package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

// smallRelation builds a random relation small enough to enumerate.
func smallRelation(r *xrand.RNG, n int) uncertain.Relation {
	rel := make(uncertain.Relation, n)
	for i := range rel {
		sup := 1 + r.Intn(3)
		probs := make([]float64, sup)
		for k := range probs {
			probs[k] = 0.1 + r.Float64()
		}
		rel[i] = uncertain.XTuple{ID: i, Dist: uncertain.MustDist(r.Intn(5), probs)}
	}
	return rel
}

// bruteMembership computes Pr(tuple in top-k) by enumeration, with rank
// defined by the number of strictly greater scores.
func bruteMembership(rel uncertain.Relation, k int) []float64 {
	out := make([]float64, len(rel))
	uncertain.EnumerateWorlds(rel, func(w uncertain.World) {
		for i := range rel {
			beat := 0
			for j := range rel {
				if j != i && w.Levels[j] > w.Levels[i] {
					beat++
				}
			}
			if beat <= k-1 {
				out[i] += w.Prob
			}
		}
	})
	return out
}

func TestTopKMembershipMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(5)
		k := 1 + r.Intn(n)
		rel := smallRelation(r, n)
		got := TopKMembershipProb(rel, k)
		want := bruteMembership(rel, k)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestUKRanksMatchesBruteForce(t *testing.T) {
	// Rank-i winner must be the tuple maximizing Pr(exactly i−1 beat it).
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(4)
		k := 1 + r.Intn(n)
		rel := smallRelation(r, n)
		got := UKRanks(rel, k)

		// Brute rank-occupancy probabilities.
		probs := make([][]float64, len(rel))
		for i := range probs {
			probs[i] = make([]float64, k)
		}
		uncertain.EnumerateWorlds(rel, func(w uncertain.World) {
			for i := range rel {
				beat := 0
				for j := range rel {
					if j != i && w.Levels[j] > w.Levels[i] {
						beat++
					}
				}
				if beat < k {
					probs[i][beat] += w.Prob
				}
			}
		})
		for rank := 0; rank < k; rank++ {
			bestP := -1.0
			for i := range rel {
				if probs[i][rank] > bestP+1e-12 {
					bestP = probs[i][rank]
				}
			}
			// The returned winner must attain the max probability.
			var winnerP float64
			for i := range rel {
				if rel[i].ID == got[rank] {
					winnerP = probs[i][rank]
				}
			}
			if math.Abs(winnerP-bestP) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPTkThresholding(t *testing.T) {
	// A certain high tuple is always returned at p=0.99; a hopeless tuple
	// never is.
	rel := uncertain.Relation{
		{ID: 0, Dist: uncertain.Certain(10)},
		{ID: 1, Dist: uncertain.MustDist(0, []float64{0.9, 0.1})},
		{ID: 2, Dist: uncertain.MustDist(4, []float64{0.5, 0.5})},
	}
	ids := PTk(rel, 1, 0.99)
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("PTk = %v, want [0]", ids)
	}
	// PT-k can return an empty set — the failure mode the paper notes.
	relTied := uncertain.Relation{
		{ID: 0, Dist: uncertain.MustDist(0, []float64{0.5, 0.5})},
		{ID: 1, Dist: uncertain.MustDist(0, []float64{0.5, 0.5})},
	}
	if got := PTk(relTied, 1, 0.95); len(got) != 0 {
		t.Fatalf("PTk on symmetric relation = %v, want empty", got)
	}
}

func TestUTopKOnPaperExample(t *testing.T) {
	// Table 1a: the most probable Top-1 set.
	rel := uncertain.Relation{
		{ID: 0, Dist: uncertain.MustDist(0, []float64{0.78, 0.21, 0.01})},
		{ID: 1, Dist: uncertain.MustDist(0, []float64{0.49, 0.42, 0.09})},
		{ID: 2, Dist: uncertain.MustDist(0, []float64{0.16, 0.48, 0.36})},
	}
	ids, p := UTopK(rel, 1)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("U-Top1 = %v, want [2] (f3 is the most probable top-1)", ids)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("U-Top1 probability %v", p)
	}
}

func TestUTopKProbabilitiesSumToOne(t *testing.T) {
	r := xrand.New(99)
	rel := smallRelation(r, 4)
	// The max-probability set's probability must be ≥ 1/(number of sets).
	ids, p := UTopK(rel, 2)
	if len(ids) != 2 {
		t.Fatalf("result size %d", len(ids))
	}
	if p < 1.0/6-1e-9 { // C(4,2) = 6 possible sets
		t.Fatalf("most probable set has probability %v < uniform floor", p)
	}
	if !sort.IntsAreSorted(ids) {
		t.Fatal("UTopK ids not sorted")
	}
}

func TestSemanticsComparisonShowsEverestAdvantage(t *testing.T) {
	// On a relation with substantial uncertainty, the alternative notions
	// answer from the prior alone while Everest cleans via the oracle and
	// guarantees the result. This reproduces the qualitative claim of §2.
	r := xrand.New(7)
	n := 60
	rel := make(uncertain.Relation, n)
	oracle := &trueWorldOracle{levels: make(map[int]int)}
	for i := range rel {
		probs := make([]float64, 4)
		for k := range probs {
			probs[k] = 0.1 + r.Float64()
		}
		rel[i] = uncertain.XTuple{ID: i, Dist: uncertain.MustDist(r.Intn(8), probs)}
		oracle.levels[i] = sampleLevel(r, rel[i].Dist)
	}
	// A few certain tuples so the engine can bootstrap cheaply.
	for i := 0; i < 5; i++ {
		rel[i].Dist = uncertain.Certain(oracle.levels[i])
	}

	const k = 3
	eng, err := NewEngine(rel, Config{K: k, Threshold: 0.95, BatchSize: 1}, oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	trueTop := topTrue(oracle.levels, k)
	evPrec := overlap(res.IDs, trueTop)
	ukPrec := overlap(UKRanks(rel, k), trueTop)
	ptPrec := overlap(PTk(rel, k, 0.5), trueTop)
	if evPrec < ukPrec || evPrec < ptPrec {
		t.Fatalf("everest precision %.2f not ≥ alternatives (ukranks %.2f, ptk %.2f)",
			evPrec, ukPrec, ptPrec)
	}
	if evPrec < 0.6 {
		t.Fatalf("everest precision %.2f unexpectedly low", evPrec)
	}
}

func topTrue(levels map[int]int, k int) []int {
	type e struct{ id, lvl int }
	var es []e
	for id, lvl := range levels {
		es = append(es, e{id, lvl})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].lvl != es[j].lvl {
			return es[i].lvl > es[j].lvl
		}
		return es[i].id < es[j].id
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = es[i].id
	}
	return out
}

func overlap(got, want []int) float64 {
	if len(want) == 0 {
		return 0
	}
	in := make(map[int]bool)
	for _, id := range want {
		in[id] = true
	}
	hit := 0
	for _, id := range got {
		if in[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
