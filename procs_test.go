package everest

import (
	"runtime"
	"testing"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// TestRunProcsBitIdentical is the engine-level determinism guarantee: the
// multi-core execution engine must produce byte-identical results to the
// serial path for every worker count — same Top-K IDs, scores,
// confidence, Phase 2 counters and simulated charges.
func TestRunProcsBitIdentical(t *testing.T) {
	udf := vision.CountUDF{Class: video.ClassCar}
	// 8 forces multi-worker scheduling even on small CI machines;
	// NumCPU covers the documented default.
	workerCounts := []int{8, runtime.NumCPU()}
	for _, seed := range []uint64{7, 29, 101} {
		cfg := smallCfg(5)
		cfg.Seed = seed
		cfg.Procs = 1
		src := testSource(t, 6000, seed)
		serial, err := Run(src, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range workerCounts {
			pcfg := cfg
			pcfg.Procs = procs
			par, err := Run(testSource(t, 6000, seed), udf, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			if par.Confidence != serial.Confidence {
				t.Fatalf("seed %d procs %d: confidence %v != serial %v", seed, procs, par.Confidence, serial.Confidence)
			}
			if par.EngineStats != serial.EngineStats {
				t.Fatalf("seed %d procs %d: stats %+v != serial %+v", seed, procs, par.EngineStats, serial.EngineStats)
			}
			if par.Phase1 != serial.Phase1 {
				t.Fatalf("seed %d procs %d: phase1 %+v != serial %+v", seed, procs, par.Phase1, serial.Phase1)
			}
			if par.Clock.TotalMS() != serial.Clock.TotalMS() {
				t.Fatalf("seed %d procs %d: simulated cost %v != serial %v", seed, procs, par.Clock.TotalMS(), serial.Clock.TotalMS())
			}
			for i := range serial.IDs {
				if par.IDs[i] != serial.IDs[i] || par.Scores[i] != serial.Scores[i] {
					t.Fatalf("seed %d procs %d: result %d (%d, %v) != serial (%d, %v)",
						seed, procs, i, par.IDs[i], par.Scores[i], serial.IDs[i], serial.Scores[i])
				}
			}
		}
	}
}

// TestWindowQueryProcsBitIdentical covers the window-relation path, whose
// parallel D0 population precomputes the representative set.
func TestWindowQueryProcsBitIdentical(t *testing.T) {
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Window = 30
	cfg.Procs = 1
	serial, err := Run(testSource(t, 6000, 43), udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Procs = 8
	par, err := Run(testSource(t, 6000, 43), udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Confidence != serial.Confidence || par.Clock.TotalMS() != serial.Clock.TotalMS() {
		t.Fatalf("window query diverged: conf %v/%v cost %v/%v",
			par.Confidence, serial.Confidence, par.Clock.TotalMS(), serial.Clock.TotalMS())
	}
	for i := range serial.IDs {
		if par.IDs[i] != serial.IDs[i] || par.Scores[i] != serial.Scores[i] {
			t.Fatalf("window %d: (%d, %v) != serial (%d, %v)",
				i, par.IDs[i], par.Scores[i], serial.IDs[i], serial.Scores[i])
		}
	}
}

// TestBuildIndexProcsBitIdentical covers the ingestion path: the index
// built on all cores must serve identical queries to one built serially.
func TestBuildIndexProcsBitIdentical(t *testing.T) {
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Procs = 1
	src := testSource(t, 6000, 47)
	serialIx, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Procs = 8
	parIx, err := BuildIndex(testSource(t, 6000, 47), udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parIx.IngestMS() != serialIx.IngestMS() {
		t.Fatalf("ingest cost %v != serial %v", parIx.IngestMS(), serialIx.IngestMS())
	}
	qcfg := smallCfg(5)
	serialRes, err := serialIx.Query(src, udf, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := parIx.Query(src, udf, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Confidence != serialRes.Confidence {
		t.Fatalf("query confidence %v != serial %v", parRes.Confidence, serialRes.Confidence)
	}
	for i := range serialRes.IDs {
		if parRes.IDs[i] != serialRes.IDs[i] || parRes.Scores[i] != serialRes.Scores[i] {
			t.Fatalf("query result %d diverged", i)
		}
	}
}
