module github.com/everest-project/everest

go 1.24
