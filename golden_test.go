package everest

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/visualroad"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_determinism.json from the current engine output")

const goldenPath = "testdata/golden_determinism.json"

// goldenProcs are the worker counts every golden scenario runs at; all
// must produce the one committed answer.
var goldenProcs = []int{1, 2, 8}

// goldenResult is the serializable projection of a Result: everything a
// query answers with, including the per-phase simulated charges. JSON
// round-trips float64 exactly (shortest-repr encoding), so equality on
// the decoded struct is bit equality.
type goldenResult struct {
	IDs        []int              `json:"ids"`
	Scores     []float64          `json:"scores"`
	Confidence float64            `json:"confidence"`
	Bound      string             `json:"bound"`
	Stats      map[string]int     `json:"stats"`
	Phase1     map[string]float64 `json:"phase1"`
	PhaseMS    map[string]float64 `json:"phase_ms"`
	TotalMS    float64            `json:"total_ms"`
}

func goldenOf(res *Result) goldenResult {
	g := goldenResult{
		IDs:        res.IDs,
		Scores:     res.Scores,
		Confidence: res.Confidence,
		Bound:      res.Bound.String(),
		Stats: map[string]int{
			"iterations":        res.EngineStats.Iterations,
			"cleaned":           res.EngineStats.Cleaned,
			"examined":          res.EngineStats.Examined,
			"pruned":            res.EngineStats.Pruned,
			"resorts":           res.EngineStats.Resorts,
			"bootstrap_cleaned": res.EngineStats.BootstrapCleaned,
			"oracle_calls":      res.EngineStats.OracleCalls,
		},
		Phase1: map[string]float64{
			"total_frames":    float64(res.Phase1.TotalFrames),
			"train_samples":   float64(res.Phase1.TrainSamples),
			"holdout_samples": float64(res.Phase1.HoldoutSamples),
			"retained":        float64(res.Phase1.Retained),
			"tuples":          float64(res.Phase1.Tuples),
			"hyper_g":         float64(res.Phase1.Hyper.G),
			"hyper_h":         float64(res.Phase1.Hyper.H),
			"holdout_nll":     res.Phase1.HoldoutNLL,
		},
		PhaseMS: map[string]float64{},
		TotalMS: res.Clock.TotalMS(),
	}
	for _, ps := range res.Clock.Breakdown() {
		g.PhaseMS[string(ps.Phase)] = ps.MS
	}
	return g
}

// goldenScenario is one committed end-to-end configuration, mirroring the
// shape (not the scale) of the paper experiments it is named after.
type goldenScenario struct {
	name string
	src  video.Source
	udf  vision.UDF
	cfg  Config
}

// goldenCfg keeps every scenario in the seconds range: one grid point,
// a higher sampling fraction, a fixed seed.
func goldenCfg(k int) Config {
	return Config{
		K:          k,
		Threshold:  0.9,
		Seed:       21,
		SampleFrac: 0.05,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 30},
	}
}

func goldenScenarios(t *testing.T) []goldenScenario {
	t.Helper()
	build := func(name string, frames int) video.Source {
		spec, err := video.DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		src, err := spec.Build(frames)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	road, err := visualroad.Generate(50, 3000, 0x51a1)
	if err != nil {
		t.Fatal(err)
	}
	fig7 := goldenCfg(5)
	fig7.Window = 30
	return []goldenScenario{
		// fig4 shape: the default Top-K frame query on a Table 7 counting
		// dataset.
		{"fig4-archie-topk", build("Archie", 3000), vision.CountUDF{Class: video.ClassCar}, goldenCfg(10)},
		// fig7 shape: a Top-K tumbling-window query.
		{"fig7-archie-window30", build("Archie", 3000), vision.CountUDF{Class: video.ClassCar}, fig7},
		// fig8 shape: Visual-Road density traffic.
		{"fig8-visualroad-50cars", road, vision.CountUDF{Class: road.TargetClass()}, goldenCfg(5)},
	}
}

// TestGoldenDeterminism is the end-to-end determinism lock: for each
// committed scenario, Run at Procs ∈ {1, 2, 8} must produce one answer —
// IDs, scores, confidence, Phase 2 counters, Phase 1 statistics and every
// simulated charge — and that answer must match the committed snapshot in
// testdata byte for byte. A diff here means the engine's output changed:
// either a bug, or an intentional change that must be re-committed with
// -update-golden and called out in the PR.
func TestGoldenDeterminism(t *testing.T) {
	got := make(map[string]goldenResult)
	for _, sc := range goldenScenarios(t) {
		var first *Result
		for _, procs := range goldenProcs {
			cfg := sc.cfg
			cfg.Procs = procs
			res, err := Run(sc.src, sc.udf, cfg)
			if err != nil {
				t.Fatalf("%s procs=%d: %v", sc.name, procs, err)
			}
			if first == nil {
				first = res
				got[sc.name] = goldenOf(res)
				continue
			}
			if !reflect.DeepEqual(goldenOf(res), goldenOf(first)) {
				t.Fatalf("%s: procs=%d diverged from procs=%d", sc.name, procs, goldenProcs[0])
			}
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d scenarios", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden snapshot (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden snapshot has %d scenarios, engine produced %d", len(want), len(got))
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Fatalf("scenario %s missing from golden snapshot", name)
		}
		if !reflect.DeepEqual(g, w) {
			gj, _ := json.MarshalIndent(g, "", "  ")
			wj, _ := json.MarshalIndent(w, "", "  ")
			t.Fatalf("scenario %s diverged from golden snapshot\ngot:\n%s\nwant:\n%s", name, gj, wj)
		}
	}
}

// TestGoldenOracleMux locks the oracle multiplexer against the
// committed golden: the fig4 scenario re-run with UseMux — every
// Phase 2 confirmation batch routed through the process-wide dispatch
// queue — must reproduce the committed mux-off snapshot byte for byte
// at every worker count: IDs, scores, confidence, counters and every
// simulated per-plan charge. Consolidation is device-side accounting
// only; the committed golden is the proof.
func TestGoldenOracleMux(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden snapshot (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	const scenario = "fig4-archie-topk"
	w, ok := want[scenario]
	if !ok {
		t.Fatalf("scenario %s missing from golden snapshot", scenario)
	}
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(3000)
	if err != nil {
		t.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	for _, procs := range goldenProcs {
		cfg := goldenCfg(10)
		cfg.Procs = procs
		cfg.UseMux = true
		res, err := Run(src, udf, cfg)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if g := goldenOf(res); !reflect.DeepEqual(g, w) {
			gj, _ := json.MarshalIndent(g, "", "  ")
			wj, _ := json.MarshalIndent(w, "", "  ")
			t.Fatalf("procs=%d: mux-on run diverged from the committed mux-off golden\ngot:\n%s\nwant:\n%s",
				procs, gj, wj)
		}
	}
}

// TestGoldenCoalescedSession locks the coalescing scheduler's
// determinism contract end to end: a coalesced batch — one engine run
// sharing a single label overlay — must return, for every query and at
// every worker count, bit-identically what serial Session.Query calls
// in the same submission order return (each serial query seeing its
// predecessors' published labels). It also locks the point of
// coalescing: the group spends strictly fewer oracle confirmations
// than the same queries run independently from cold caches.
func TestGoldenCoalescedSession(t *testing.T) {
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(3000)
	if err != nil {
		t.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	mkCfgs := func() []Config {
		big := goldenCfg(10)
		strict := goldenCfg(5)
		strict.Threshold = 0.99
		win := goldenCfg(5)
		win.Window = 30
		return []Config{big, strict, win}
	}
	ix, err := BuildIndex(src, udf, goldenCfg(10))
	if err != nil {
		t.Fatal(err)
	}

	// Serial submission-order reference: a fresh session, one Query at a
	// time, each publishing before the next snapshots.
	serialSess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := mkCfgs()
	serial := make([]goldenResult, len(cfgs))
	independent := 0 // oracle bill of the same queries from cold caches
	for i, cfg := range cfgs {
		res, err := serialSess.Query(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = goldenOf(res)
		alone, err := ix.Query(src, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		independent += alone.EngineStats.Cleaned
	}

	for _, procs := range goldenProcs {
		sess, err := NewSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		cfgs := mkCfgs()
		coalesced := 0
		for i := range cfgs {
			cfgs[i].Procs = procs
			cfgs[i].Coalesce = true
		}
		results, err := sess.QueryBatch(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			g := goldenOf(res)
			if !reflect.DeepEqual(g, serial[i]) {
				gj, _ := json.MarshalIndent(g, "", "  ")
				wj, _ := json.MarshalIndent(serial[i], "", "  ")
				t.Fatalf("procs=%d coalesced query %d diverged from serial submission order\ngot:\n%s\nwant:\n%s",
					procs, i, gj, wj)
			}
			coalesced += res.EngineStats.Cleaned
		}
		if coalesced >= independent {
			t.Fatalf("procs=%d: coalesced batch cleaned %d frames, independent runs clean %d — coalescing saved nothing",
				procs, coalesced, independent)
		}
	}
}

// TestGoldenIndexSaveLoadRoundTrip locks index persistence through the
// unified engine path: an index restored by LoadIndex must answer every
// query — frame and window, direct and session-coalesced — bit-identically
// to the in-memory index it was saved from, at every worker count.
func TestGoldenIndexSaveLoadRoundTrip(t *testing.T) {
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(3000)
	if err != nil {
		t.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := goldenCfg(10)
	wcfg := goldenCfg(5)
	wcfg.Window = 30
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dataset() != ix.Dataset() || loaded.UDFName() != ix.UDFName() || loaded.IngestMS() != ix.IngestMS() {
		t.Fatal("round-trip lost index metadata")
	}
	for _, qcfg := range []Config{cfg, wcfg} {
		ref, err := ix.Query(src, udf, qcfg)
		if err != nil {
			t.Fatal(err)
		}
		refGolden := goldenOf(ref)
		for _, procs := range goldenProcs {
			pcfg := qcfg
			pcfg.Procs = procs
			res, err := loaded.Query(src, udf, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			if g := goldenOf(res); !reflect.DeepEqual(g, refGolden) {
				gj, _ := json.MarshalIndent(g, "", "  ")
				wj, _ := json.MarshalIndent(refGolden, "", "  ")
				t.Fatalf("window=%d procs=%d: loaded index diverged from in-memory\ngot:\n%s\nwant:\n%s",
					qcfg.Window, procs, gj, wj)
			}
		}
	}
	// A coalesced session over the loaded index behaves like one over the
	// original: first caller pays, repeats ride for free.
	sess, err := NewSession(loaded, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.Coalesce = true
	results, err := sess.RunConcurrent(ccfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res.IDs, ref.IDs) || !reflect.DeepEqual(res.Scores, ref.Scores) {
			t.Fatalf("coalesced caller %d over the loaded index changed the answer", i)
		}
	}
	if results[1].EngineStats.Cleaned != 0 || results[2].EngineStats.Cleaned != 0 {
		t.Fatalf("coalesced repeats paid the oracle: %d, %d cleaned",
			results[1].EngineStats.Cleaned, results[2].EngineStats.Cleaned)
	}
}

// TestGoldenConcurrentSession extends the determinism lock to the
// concurrent-serving path: N concurrent Session.Query callers launched
// over one cache snapshot (QueryBatch) must each return bit-identically
// what a lone indexed query returns, at every worker count.
func TestGoldenConcurrentSession(t *testing.T) {
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(3000)
	if err != nil {
		t.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := goldenCfg(10)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refGolden := goldenOf(ref)
	for _, procs := range goldenProcs {
		qcfg := cfg
		qcfg.Procs = procs
		sess, err := NewSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sess.RunConcurrent(qcfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			g := goldenOf(r)
			if !reflect.DeepEqual(g, refGolden) {
				gj, _ := json.MarshalIndent(g, "", "  ")
				wj, _ := json.MarshalIndent(refGolden, "", "  ")
				t.Fatalf("procs=%d caller %d diverged from the lone indexed query\ngot:\n%s\nwant:\n%s",
					procs, i, gj, wj)
			}
		}
	}
}
