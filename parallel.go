package everest

import (
	"github.com/everest-project/everest/internal/scaleout"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// ParallelResult is the outcome of RunParallel: a guaranteed Top-K plus
// the scale-out accounting (wall-clock under the BSP model and the total
// paid accelerator time, which grows with the worker count).
type ParallelResult struct {
	// Result is the guaranteed Top-K with the BSP wall-clock attached.
	Result
	// Workers echoes the worker count.
	Workers int
	// WorkerSumMS is the summed Phase 1 accelerator time across workers —
	// the bill, as opposed to Result.Clock's latency.
	WorkerSumMS float64
	// Shards summarizes each worker's Phase 1.
	Shards []scaleout.ShardInfo
}

// RunParallel executes a Top-K query with workers-way scale-out: Phase 1
// runs partitioned across per-shard specialized proxies on parallel
// simulated accelerators, and Phase 2 cleans batches spread over the same
// accelerators (the RAM3S-style framework the paper names as future work,
// §3.5). workers == 1 is semantically equivalent to Run up to sampling
// randomness.
func RunParallel(src video.Source, udf vision.UDF, cfg Config, workers int) (*ParallelResult, error) {
	cfg = cfg.withDefaults()
	rep, err := scaleout.Run(src, udf, scaleout.Options{
		Workers:          workers,
		K:                cfg.K,
		Threshold:        cfg.Threshold,
		BatchSize:        cfg.BatchSize,
		MaxCleaned:       cfg.MaxCleaned,
		Window:           cfg.Window,
		Stride:           cfg.Stride,
		WindowSampleFrac: cfg.WindowSampleFrac,
		UnionBound:       cfg.UnionBound,
		// Seed 0 here: scaleout ignores Phase1.Seed and derives per-shard
		// streams from its own Seed. Procs rides along, so each shard's
		// inner pipeline also uses the multi-core engine.
		Phase1: cfg.phase1Options(0),
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	qopt := udf.Quantize()
	scores := make([]float64, len(rep.Core.Levels))
	for i, lvl := range rep.Core.Levels {
		scores[i] = uncertain.LevelValue(lvl, qopt.Step)
	}
	// The normalized plan resolves the effective stride (tumbling when
	// unset); scale-out reuses the same normalization as the engine path.
	stride := 0
	if w := cfg.plan().Window; w.Enabled() {
		stride = w.Stride
	}
	info := Phase1Info{TotalFrames: src.NumFrames(), Tuples: rep.Tuples}
	for _, sh := range rep.Shards {
		info.TrainSamples += sh.Info.TrainSamples
		info.HoldoutSamples += sh.Info.HoldoutSamples
		info.Retained += sh.Info.Retained
	}
	return &ParallelResult{
		Result: Result{
			IDs:          rep.Core.IDs,
			Scores:       scores,
			Confidence:   rep.Core.Confidence,
			Bound:        rep.Core.Bound,
			IsWindow:     cfg.Window > 0,
			WindowSize:   cfg.Window,
			WindowStride: stride,
			Clock:        rep.Clock,
			EngineStats:  rep.Core.Stats,
			Phase1:       info,
		},
		Workers:     workers,
		WorkerSumMS: rep.WorkerSumMS,
		Shards:      rep.Shards,
	}, nil
}
