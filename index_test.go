package everest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"strings"
	"testing"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func TestBuildIndexAndQuery(t *testing.T) {
	src := testSource(t, 9000, 41)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)

	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Dataset() != src.Name() || ix.UDFName() != udf.Name() {
		t.Fatalf("index metadata wrong: %s / %s", ix.Dataset(), ix.UDFName())
	}
	if ix.IngestMS() <= 0 {
		t.Fatal("ingestion cost not recorded")
	}

	res, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	// Indexed queries pay Phase 2 only: far below the ingestion cost and
	// below a fresh end-to-end run.
	if res.Clock.TotalMS() >= ix.IngestMS() {
		t.Fatalf("indexed query cost %v not below ingest cost %v",
			res.Clock.TotalMS(), ix.IngestMS())
	}
	// Certain-result condition still holds.
	for i, id := range res.IDs {
		if int(res.Scores[i]) != src.TrueCountFast(id) {
			t.Fatalf("frame %d score %v, truth %d", id, res.Scores[i], src.TrueCountFast(id))
		}
	}
}

func TestIndexMatchesFreshRun(t *testing.T) {
	// The index captures exactly Phase 1's outputs, so an indexed query
	// must return the same result set as a fresh end-to-end run with the
	// same seed.
	src := testSource(t, 9000, 43)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)

	fresh, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.IDs) != len(indexed.IDs) {
		t.Fatalf("result sizes differ: %d vs %d", len(fresh.IDs), len(indexed.IDs))
	}
	for i := range fresh.IDs {
		if fresh.IDs[i] != indexed.IDs[i] {
			t.Fatalf("results diverge at %d: %v vs %v", i, fresh.IDs, indexed.IDs)
		}
	}
	if fresh.Confidence != indexed.Confidence {
		t.Fatalf("confidence diverges: %v vs %v", fresh.Confidence, indexed.Confidence)
	}
}

func TestIndexAmortizesAcrossQueries(t *testing.T) {
	src := testSource(t, 9000, 47)
	udf := vision.CountUDF{Class: video.ClassCar}
	base := smallCfg(5)
	ix, err := BuildIndex(src, udf, base)
	if err != nil {
		t.Fatal(err)
	}
	// Different K and thres reuse the same index.
	for _, k := range []int{1, 3, 10} {
		cfg := base
		cfg.K = k
		res, err := ix.Query(src, udf, cfg)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(res.IDs) != k || res.Confidence < 0.9 {
			t.Fatalf("K=%d: size %d confidence %v", k, len(res.IDs), res.Confidence)
		}
	}
	// Window query from the same index.
	cfg := base
	cfg.K = 3
	cfg.Window = 30
	res, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || len(res.IDs) != 3 {
		t.Fatalf("window query from index: %+v", res)
	}
}

func TestIndexValidation(t *testing.T) {
	src := testSource(t, 6000, 53)
	other := testSource(t, 6000, 54)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	// Different video (name differs only via config name... same name here,
	// so check the frame-count mismatch path).
	short := testSource(t, 3000, 53)
	if _, err := ix.Query(short, udf, smallCfg(3)); err == nil {
		t.Fatal("frame-count mismatch should be rejected")
	}
	// Different UDF.
	if _, err := ix.Query(src, vision.CountUDF{Class: video.ClassPerson}, smallCfg(3)); err == nil {
		t.Fatal("UDF mismatch should be rejected")
	}
	// K too large.
	big := smallCfg(3)
	big.K = 10_000_000
	if _, err := ix.Query(src, udf, big); err == nil {
		t.Fatal("oversized K should be rejected")
	}
	_ = other
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	src := testSource(t, 6000, 59)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(4)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatalf("round-tripped index diverges: %v vs %v", a.IDs, b.IDs)
		}
	}
	if loaded.IngestMS() != ix.IngestMS() {
		t.Fatal("ingest cost lost in round trip")
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}

// TestIndexFileFormat locks the persisted index's on-disk contract:
// atomic SaveFile/LoadFile round trip, typed *IndexFormatError for
// corruption and unknown format versions, and the compatibility path
// for unversioned (pre-header) files.
func TestIndexFileFormat(t *testing.T) {
	src := testSource(t, 3000, 61)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(3)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/archie.evidx"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	t.Run("round trip", func(t *testing.T) {
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Dataset() != ix.Dataset() || loaded.CertainFrames() != ix.CertainFrames() {
			t.Fatal("LoadFile changed the index")
		}
		// No temp residue from the atomic save.
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("SaveFile left its temp file behind")
		}
	})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bit flip fails typed", func(t *testing.T) {
		for _, off := range []int{20, len(data) / 2, len(data) - 5} {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x01
			var ferr *IndexFormatError
			if _, err := LoadIndex(bytes.NewReader(bad)); !errors.As(err, &ferr) {
				t.Fatalf("bit flip at %d: %v, want *IndexFormatError", off, err)
			}
		}
	})

	t.Run("truncation fails typed", func(t *testing.T) {
		for _, n := range []int{0, 4, len(indexMagic), len(indexMagic) + 2, len(data) / 2, len(data) - 1} {
			var ferr *IndexFormatError
			if _, err := LoadIndex(bytes.NewReader(data[:n])); !errors.As(err, &ferr) {
				t.Fatalf("truncation to %d: %v, want *IndexFormatError", n, err)
			}
		}
	})

	t.Run("future format version refused", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(indexMagic)] = 99 // format version field
		var ferr *IndexFormatError
		if _, err := LoadIndex(bytes.NewReader(bad)); !errors.As(err, &ferr) {
			t.Fatalf("future version: %v, want *IndexFormatError", err)
		}
		if ferr.FormatVersion != 99 {
			t.Fatalf("FormatVersion = %d, want 99", ferr.FormatVersion)
		}
	})

	t.Run("unversioned legacy file loads", func(t *testing.T) {
		// Files from before the header existed are a bare gob stream.
		var legacy bytes.Buffer
		if err := gob.NewEncoder(&legacy).Encode(ix.codec()); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIndex(&legacy)
		if err != nil {
			t.Fatalf("legacy unversioned index: %v", err)
		}
		if loaded.Dataset() != ix.Dataset() {
			t.Fatal("legacy load changed the index")
		}
	})

	t.Run("garbage names the unversioned possibility", func(t *testing.T) {
		var ferr *IndexFormatError
		_, err := LoadIndex(bytes.NewReader([]byte("neither headered nor legacy gob")))
		if !errors.As(err, &ferr) {
			t.Fatalf("garbage: %v, want *IndexFormatError", err)
		}
		if !strings.Contains(ferr.Reason, "unversioned") {
			t.Fatalf("garbage error should mention the unversioned compat path, got %q", ferr.Reason)
		}
	})
}
