package everest

import (
	"bytes"
	"testing"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func TestBuildIndexAndQuery(t *testing.T) {
	src := testSource(t, 9000, 41)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)

	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Dataset() != src.Name() || ix.UDFName() != udf.Name() {
		t.Fatalf("index metadata wrong: %s / %s", ix.Dataset(), ix.UDFName())
	}
	if ix.IngestMS() <= 0 {
		t.Fatal("ingestion cost not recorded")
	}

	res, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	// Indexed queries pay Phase 2 only: far below the ingestion cost and
	// below a fresh end-to-end run.
	if res.Clock.TotalMS() >= ix.IngestMS() {
		t.Fatalf("indexed query cost %v not below ingest cost %v",
			res.Clock.TotalMS(), ix.IngestMS())
	}
	// Certain-result condition still holds.
	for i, id := range res.IDs {
		if int(res.Scores[i]) != src.TrueCountFast(id) {
			t.Fatalf("frame %d score %v, truth %d", id, res.Scores[i], src.TrueCountFast(id))
		}
	}
}

func TestIndexMatchesFreshRun(t *testing.T) {
	// The index captures exactly Phase 1's outputs, so an indexed query
	// must return the same result set as a fresh end-to-end run with the
	// same seed.
	src := testSource(t, 9000, 43)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)

	fresh, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.IDs) != len(indexed.IDs) {
		t.Fatalf("result sizes differ: %d vs %d", len(fresh.IDs), len(indexed.IDs))
	}
	for i := range fresh.IDs {
		if fresh.IDs[i] != indexed.IDs[i] {
			t.Fatalf("results diverge at %d: %v vs %v", i, fresh.IDs, indexed.IDs)
		}
	}
	if fresh.Confidence != indexed.Confidence {
		t.Fatalf("confidence diverges: %v vs %v", fresh.Confidence, indexed.Confidence)
	}
}

func TestIndexAmortizesAcrossQueries(t *testing.T) {
	src := testSource(t, 9000, 47)
	udf := vision.CountUDF{Class: video.ClassCar}
	base := smallCfg(5)
	ix, err := BuildIndex(src, udf, base)
	if err != nil {
		t.Fatal(err)
	}
	// Different K and thres reuse the same index.
	for _, k := range []int{1, 3, 10} {
		cfg := base
		cfg.K = k
		res, err := ix.Query(src, udf, cfg)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(res.IDs) != k || res.Confidence < 0.9 {
			t.Fatalf("K=%d: size %d confidence %v", k, len(res.IDs), res.Confidence)
		}
	}
	// Window query from the same index.
	cfg := base
	cfg.K = 3
	cfg.Window = 30
	res, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || len(res.IDs) != 3 {
		t.Fatalf("window query from index: %+v", res)
	}
}

func TestIndexValidation(t *testing.T) {
	src := testSource(t, 6000, 53)
	other := testSource(t, 6000, 54)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	// Different video (name differs only via config name... same name here,
	// so check the frame-count mismatch path).
	short := testSource(t, 3000, 53)
	if _, err := ix.Query(short, udf, smallCfg(3)); err == nil {
		t.Fatal("frame-count mismatch should be rejected")
	}
	// Different UDF.
	if _, err := ix.Query(src, vision.CountUDF{Class: video.ClassPerson}, smallCfg(3)); err == nil {
		t.Fatal("UDF mismatch should be rejected")
	}
	// K too large.
	big := smallCfg(3)
	big.K = 10_000_000
	if _, err := ix.Query(src, udf, big); err == nil {
		t.Fatal("oversized K should be rejected")
	}
	_ = other
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	src := testSource(t, 6000, 59)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(4)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatalf("round-tripped index diverges: %v vs %v", a.IDs, b.IDs)
		}
	}
	if loaded.IngestMS() != ix.IngestMS() {
		t.Fatal("ingest cost lost in round trip")
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}
