package everest

import (
	"errors"
	"fmt"

	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Extend incrementally ingests footage appended to an indexed video: src
// must be the same camera feed, now longer than when the index was built.
// The appended tail [indexed frames, src frames) runs the full Phase 1
// pipeline — its own sampling, labelling, and a tail-specialized CMDN —
// and the outputs are merged into the index, exactly as the scale-out
// executor specializes one proxy per shard. Nothing already ingested is
// recomputed, so a nightly append costs Phase 1 of the new footage only.
//
// Per-segment specialization is also the honest answer to model drift:
// the paper defers drift handling (§3.1), and scoring tonight's frames
// with a proxy trained on tonight's frames sidesteps it for the batch
// append case.
//
// The returned cost is the tail's simulated ingestion time; it is also
// added to IngestMS.
func (ix *Index) Extend(src video.Source, udf vision.UDF, cfg Config) (tailMS float64, err error) {
	if src == nil || udf == nil {
		return 0, errors.New("everest: nil source or UDF")
	}
	if src.Name() != ix.dataset {
		return 0, fmt.Errorf("everest: index was built for %s, not %s", ix.dataset, src.Name())
	}
	if udf.Name() != ix.udfName {
		return 0, fmt.Errorf("everest: index was built for UDF %s, not %s", ix.udfName, udf.Name())
	}
	n := src.NumFrames()
	if n <= ix.totalFrames {
		return 0, fmt.Errorf("everest: source has %d frames, index already covers %d — nothing to append",
			n, ix.totalFrames)
	}
	cfg = cfg.withDefaults()

	lo := ix.totalFrames
	tail, err := video.Slice(src, lo, n)
	if err != nil {
		return 0, err
	}
	clock := simclock.NewClock()
	pool := cfg.queryPool()
	if pool != nil {
		defer pool.Close()
	}
	// cfg.Seed ^ lo: a fresh stream per append.
	p1opts := cfg.phase1Options(cfg.Seed ^ uint64(lo))
	p1opts.Pool = pool
	st, err := phase1.Run(tail, udf, p1opts, clock)
	if err != nil {
		return 0, fmt.Errorf("everest: extending index: %w", err)
	}

	// Merge in global coordinates. The difference detector never links
	// across the append boundary; the first tail frame always starts a new
	// segment, which at worst retains one redundant frame.
	for _, rep := range st.Diff.RepOf {
		ix.repOf = append(ix.repOf, int32(lo)+rep)
	}
	for _, f := range st.Diff.Retained {
		g := int32(lo + f)
		ix.retained = append(ix.retained, g)
		if s, ok := st.Labeled[f]; ok {
			ix.exact[g] = s
		}
	}
	inferIDs, mixes := st.InferRetainedMixtures()
	for k, f := range inferIDs {
		ix.mixtures[int32(lo+f)] = mixes[k]
	}
	clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*cfg.Cost.ProxyMS)

	ix.totalFrames = n
	ix.info.TotalFrames = n
	ix.info.TrainSamples += st.Info.TrainSamples
	ix.info.HoldoutSamples += st.Info.HoldoutSamples
	ix.info.Retained += st.Info.Retained
	tailMS = clock.TotalMS()
	ix.ingestMS += tailMS
	return tailMS, nil
}
