package everest

import (
	"errors"
	"fmt"

	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Extend incrementally ingests footage appended to an indexed video: src
// must be the same camera feed, now longer than when the index was built.
// The appended tail [indexed frames, src frames) runs the engine's full
// Ingest stage — its own sampling, labelling, and a tail-specialized
// CMDN — and the resulting artifact is merged into the index's, exactly
// as the scale-out executor specializes one proxy per shard. Nothing
// already ingested is recomputed, so a nightly append costs Phase 1 of
// the new footage only.
//
// Per-segment specialization is also the honest answer to model drift:
// the paper defers drift handling (§3.1), and scoring tonight's frames
// with a proxy trained on tonight's frames sidesteps it for the batch
// append case.
//
// The returned cost is the tail's simulated ingestion time; it is also
// added to IngestMS.
func (ix *Index) Extend(src video.Source, udf vision.UDF, cfg Config) (tailMS float64, err error) {
	if src == nil || udf == nil {
		return 0, errors.New("everest: nil source or UDF")
	}
	if src.Name() != ix.art.Dataset {
		return 0, fmt.Errorf("everest: index was built for %s, not %s", ix.art.Dataset, src.Name())
	}
	if udf.Name() != ix.art.UDFName {
		return 0, fmt.Errorf("everest: index was built for UDF %s, not %s", ix.art.UDFName, udf.Name())
	}
	n := src.NumFrames()
	if n <= ix.art.TotalFrames {
		return 0, fmt.Errorf("everest: source has %d frames, index already covers %d — nothing to append",
			n, ix.art.TotalFrames)
	}
	cfg = cfg.withDefaults()

	lo := ix.art.TotalFrames
	tail, err := video.Slice(src, lo, n)
	if err != nil {
		return 0, err
	}
	clock := simclock.NewClock()
	// The resident pool outlives this call: nightly appends reuse the
	// same workers instead of paying a pool build/teardown per Extend.
	pool := ix.residentPool(cfg.plan())
	// cfg.Seed ^ lo: a fresh stream per append.
	opt := cfg.phase1Options(cfg.Seed ^ uint64(lo))
	opt.Pool = pool
	tailArt, err := engine.Ingest(tail, udf, opt, clock)
	if err != nil {
		return 0, fmt.Errorf("everest: extending index: %w", err)
	}

	// Merge in global coordinates. The difference detector never links
	// across the append boundary; the first tail frame always starts a new
	// segment, which at worst retains one redundant frame.
	if err := ix.art.Append(tailArt, lo); err != nil {
		return 0, fmt.Errorf("everest: extending index: %w", err)
	}
	ix.info = phase1InfoOf(ix.art.Info)
	tailMS = clock.TotalMS()
	ix.ingestMS += tailMS
	return tailMS, nil
}
