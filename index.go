package everest

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
)

// Index is a precomputed Phase 1 artifact: the difference-detector
// structure plus, per retained frame, either the exact oracle label or the
// CMDN's score mixture. The paper observes (§4.2) that "Phase 1 can be
// done offline during data ingestion (e.g., Focus [32]) or even at the
// edge"; an Index is that ingestion product. Once built, any number of
// Top-K and Top-K-window queries — different K, thres, window size — run
// Phase 2 only, paying no sampling, training, decoding or proxy-inference
// cost.
//
// An Index is tied to one (video, UDF) pair and can be persisted with
// Save and restored with LoadIndex.
type Index struct {
	dataset     string
	udfName     string
	totalFrames int
	retained    []int32
	repOf       []int32
	exact       map[int32]float64
	mixtures    map[int32]uncertain.Mixture
	info        Phase1Info
	ingestMS    float64
}

// Dataset returns the indexed video's name.
func (ix *Index) Dataset() string { return ix.dataset }

// UDFName returns the indexed scoring function's name.
func (ix *Index) UDFName() string { return ix.udfName }

// IngestMS returns the simulated one-off ingestion cost (Phase 1).
func (ix *Index) IngestMS() float64 { return ix.ingestMS }

// Info returns the Phase 1 statistics captured at ingestion.
func (ix *Index) Info() Phase1Info { return ix.info }

// BuildIndex runs Phase 1 once and captures its outputs for reuse.
func BuildIndex(src video.Source, udf vision.UDF, cfg Config) (*Index, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	clock := simclock.NewClock()
	pool := cfg.queryPool()
	if pool != nil {
		defer pool.Close()
	}
	p1opts := cfg.phase1Options(cfg.Seed)
	p1opts.Pool = pool
	st, err := phase1.Run(src, udf, p1opts, clock)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		dataset:     src.Name(),
		udfName:     udf.Name(),
		totalFrames: src.NumFrames(),
		repOf:       append([]int32(nil), st.Diff.RepOf...),
		exact:       make(map[int32]float64),
		mixtures:    make(map[int32]uncertain.Mixture),
		info: Phase1Info{
			TotalFrames:    st.Info.TotalFrames,
			TrainSamples:   st.Info.TrainSamples,
			HoldoutSamples: st.Info.HoldoutSamples,
			Retained:       st.Info.Retained,
			Hyper:          st.Info.Hyper,
			HoldoutNLL:     st.Info.HoldoutNLL,
		},
	}
	for _, f := range st.Diff.Retained {
		ix.retained = append(ix.retained, int32(f))
		if s, ok := st.Labeled[f]; ok {
			ix.exact[int32(f)] = s
		}
	}
	// Proxy inference over the retained set runs on all configured
	// workers; the captured mixtures are identical to the serial sweep.
	inferIDs, mixes := st.InferRetainedMixtures()
	for k, f := range inferIDs {
		ix.mixtures[int32(f)] = mixes[k]
	}
	clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*cfg.Cost.ProxyMS)
	ix.ingestMS = clock.TotalMS()
	return ix, nil
}

// frameRelation rebuilds D0 from the captured mixtures. labels, when
// non-nil, supplies exact scores confirmed by earlier queries over the
// same cache (session overlay); those frames enter D0 certain.
func (ix *Index) frameRelation(qopt uncertain.QuantizeOptions, labels *labelstore.Overlay) (uncertain.Relation, error) {
	rel := make(uncertain.Relation, 0, len(ix.retained))
	for _, f := range ix.retained {
		if s, ok := ix.exact[f]; ok {
			lvl := phase1.ClampLevel(uncertain.LevelOf(s, qopt.Step), qopt)
			rel = append(rel, uncertain.XTuple{ID: int(f), Dist: uncertain.Certain(lvl)})
			continue
		}
		if s, ok := labels.Get(int(f)); ok {
			lvl := phase1.ClampLevel(uncertain.LevelOf(s, qopt.Step), qopt)
			rel = append(rel, uncertain.XTuple{ID: int(f), Dist: uncertain.Certain(lvl)})
			continue
		}
		mix, ok := ix.mixtures[f]
		if !ok {
			return nil, fmt.Errorf("everest: index missing mixture for frame %d", f)
		}
		d, err := uncertain.Quantize(mix, qopt)
		if err != nil {
			d = uncertain.Certain(phase1.ClampLevel(uncertain.LevelOf(mix.Mean(), qopt.Step), qopt))
		}
		rel = append(rel, uncertain.XTuple{ID: int(f), Dist: d})
	}
	return rel, nil
}

// windowRelation rebuilds the window-level D0 (Eq. 9) from the captured
// mixtures and segment structure. labels, when non-nil, supplies exact
// scores confirmed by earlier queries over the same cache; it must not
// be mutated while this runs (the score lookup fans out over the
// query's workers).
func (ix *Index) windowRelation(size, stride int, qopt uncertain.QuantizeOptions, labels *labelstore.Overlay, procs int, pool *workpool.Pool) (uncertain.Relation, error) {
	diff := diffdet.Result{RepOf: ix.repOf}
	maxLevel := 0
	if qopt.MaxLevel > 0 && qopt.MaxLevel < int(^uint(0)>>1) {
		maxLevel = qopt.MaxLevel
	}
	return windows.BuildRelation(func(rep int) windows.FrameScore {
		if s, ok := ix.exact[int32(rep)]; ok {
			return windows.FrameScore{IsExact: true, Exact: s}
		}
		if s, ok := labels.Get(rep); ok {
			return windows.FrameScore{IsExact: true, Exact: s}
		}
		return windows.FrameScore{Mix: ix.mixtures[int32(rep)]}
	}, diff, windows.Options{Size: size, Stride: stride, Step: qopt.Step, MaxLevel: maxLevel, Procs: procs, Pool: pool})
}

// Query runs Phase 2 against the index. The source and UDF must be the
// ones the index was built from; only Phase 2 costs are charged.
func (ix *Index) Query(src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	return ix.query(src, udf, cfg, nil)
}

// validateFor checks that (src, udf) is what the index was built from.
func (ix *Index) validateFor(src video.Source, udf vision.UDF) error {
	if src == nil || udf == nil {
		return errors.New("everest: nil source or UDF")
	}
	if src.Name() != ix.dataset || src.NumFrames() != ix.totalFrames {
		return fmt.Errorf("everest: index was built for %s (%d frames), not %s (%d frames)",
			ix.dataset, ix.totalFrames, src.Name(), src.NumFrames())
	}
	if udf.Name() != ix.udfName {
		return fmt.Errorf("everest: index was built for UDF %s, not %s", ix.udfName, udf.Name())
	}
	return nil
}

// query is the shared Phase 2 path for Index.Query and Session.Query.
// When labels is non-nil it is the query's private overlay over the
// session cache snapshot: frames in it enter D0 certain, cleaned frames
// are recorded into its fresh set, and oracle cost is charged only for
// cache misses.
func (ix *Index) query(src video.Source, udf vision.UDF, cfg Config, labels *labelstore.Overlay) (*Result, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("everest: K must be positive, got %d", cfg.K)
	}
	if cfg.Window == 0 && cfg.Stride > 0 {
		return nil, fmt.Errorf("everest: stride %d given without a window", cfg.Stride)
	}

	clock := simclock.NewClock()
	// One resident worker pool serves the whole query: window
	// aggregation and Phase 2's speculative selection blocks reuse the
	// same goroutines instead of spawning a worker set per block.
	pool := cfg.queryPool()
	if pool != nil {
		defer pool.Close()
	}
	qopt := udf.Quantize()
	// scoreFrames is the frame-level oracle shared by both query kinds:
	// it consults and feeds the session cache and charges per miss.
	scoreFrames := func(ids []int) ([]float64, error) {
		scores := make([]float64, len(ids))
		var missAt, missIDs []int
		for i, id := range ids {
			if s, ok := labels.Get(id); ok {
				scores[i] = s
				continue
			}
			missAt = append(missAt, i)
			missIDs = append(missIDs, id)
		}
		if len(missIDs) > 0 {
			fresh := udf.Score(src, missIDs)
			for j, i := range missAt {
				scores[i] = fresh[j]
				labels.Set(missIDs[j], fresh[j])
			}
			clock.Charge(simclock.PhaseConfirm, float64(len(missIDs))*udf.OracleCostMS(cfg.Cost))
		}
		return scores, nil
	}

	var rel uncertain.Relation
	var oracle core.Oracle
	// The frame-level oracle above charges its own per-frame cost, so the
	// engine charges only the per-call overhead (and unhidden decode).
	engineCost := cfg.Cost
	engineCost.OracleMS = 0
	var err error
	if cfg.Window > 0 {
		rel, err = ix.windowRelation(cfg.Window, cfg.windowStride(), qopt, labels, cfg.Procs, pool)
		if err != nil {
			return nil, err
		}
		oracle = &windows.Oracle{
			ScoreFrames: scoreFrames,
			Size:        cfg.Window,
			Stride:      cfg.windowStride(),
			SampleFrac:  cfg.WindowSampleFrac,
			Step:        qopt.Step,
			Seed:        cfg.Seed,
		}
	} else {
		rel, err = ix.frameRelation(qopt, labels)
		if err != nil {
			return nil, err
		}
		oracle = core.OracleFunc(func(ids []int) ([]int, error) {
			scores, err := scoreFrames(ids)
			if err != nil {
				return nil, err
			}
			levels := make([]int, len(ids))
			for i, s := range scores {
				levels[i] = uncertain.LevelOf(s, qopt.Step)
			}
			return levels, nil
		})
	}
	if cfg.K > len(rel) {
		return nil, fmt.Errorf("everest: K=%d exceeds relation size %d", cfg.K, len(rel))
	}

	coreCfg := core.Config{
		K:                cfg.K,
		Threshold:        cfg.Threshold,
		BatchSize:        cfg.BatchSize,
		MaxCleaned:       cfg.MaxCleaned,
		DisableEarlyStop: cfg.DisableEarlyStop,
		ResortOnce:       cfg.ResortOnce,
		Bound:            cfg.boundKind(),
		Procs:            cfg.Procs,
		Pool:             pool,
	}
	if cfg.DisablePrefetch {
		coreCfg.UnhiddenDecodeMS = cfg.Cost.DecodeMS
	}
	eng, err := core.NewEngine(rel, coreCfg, oracle, clock, engineCost)
	if err != nil {
		return nil, err
	}
	coreRes, err := eng.Run()
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(coreRes.Levels))
	for i, lvl := range coreRes.Levels {
		scores[i] = uncertain.LevelValue(lvl, qopt.Step)
	}
	info := ix.info
	info.Tuples = len(rel)
	stride := 0
	if cfg.Window > 0 {
		stride = cfg.windowStride()
	}
	return &Result{
		IDs:          coreRes.IDs,
		Scores:       scores,
		Confidence:   coreRes.Confidence,
		Bound:        coreRes.Bound,
		IsWindow:     cfg.Window > 0,
		WindowSize:   cfg.Window,
		WindowStride: stride,
		Clock:        clock,
		EngineStats:  coreRes.Stats,
		Phase1:       info,
	}, nil
}

// indexCodec is the gob wire form of an Index.
type indexCodec struct {
	Version     int
	Dataset     string
	UDFName     string
	TotalFrames int
	Retained    []int32
	RepOf       []int32
	Exact       map[int32]float64
	Mixtures    map[int32]uncertain.Mixture
	Info        Phase1Info
	IngestMS    float64
}

const indexVersion = 1

// Save persists the index.
func (ix *Index) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(indexCodec{
		Version:     indexVersion,
		Dataset:     ix.dataset,
		UDFName:     ix.udfName,
		TotalFrames: ix.totalFrames,
		Retained:    ix.retained,
		RepOf:       ix.repOf,
		Exact:       ix.exact,
		Mixtures:    ix.mixtures,
		Info:        ix.info,
		IngestMS:    ix.ingestMS,
	})
}

// LoadIndex restores an index written by Save.
func LoadIndex(r io.Reader) (*Index, error) {
	var c indexCodec
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("everest: decoding index: %w", err)
	}
	if c.Version != indexVersion {
		return nil, fmt.Errorf("everest: index version %d not supported (want %d)", c.Version, indexVersion)
	}
	return &Index{
		dataset:     c.Dataset,
		udfName:     c.UDFName,
		totalFrames: c.TotalFrames,
		retained:    c.Retained,
		repOf:       c.RepOf,
		exact:       c.Exact,
		mixtures:    c.Mixtures,
		info:        c.Info,
		ingestMS:    c.IngestMS,
	}, nil
}
