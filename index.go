package everest

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Index is a precomputed Phase 1 artifact: the difference-detector
// structure plus, per retained frame, either the exact oracle label or the
// CMDN's score mixture. The paper observes (§4.2) that "Phase 1 can be
// done offline during data ingestion (e.g., Focus [32]) or even at the
// edge"; an Index is that ingestion product. Once built, any number of
// Top-K and Top-K-window queries — different K, thres, window size — run
// Phase 2 only, paying no sampling, training, decoding or proxy-inference
// cost.
//
// An Index is the public wrapper of the engine's ingest Artifact: every
// query against it compiles to an engine.Plan and executes on the one
// shared pipeline. It is tied to one (video, UDF) pair and can be
// persisted with Save and restored with LoadIndex.
type Index struct {
	art      *engine.Artifact
	info     Phase1Info
	ingestMS float64
}

// Dataset returns the indexed video's name.
func (ix *Index) Dataset() string { return ix.art.Dataset }

// UDFName returns the indexed scoring function's name.
func (ix *Index) UDFName() string { return ix.art.UDFName }

// IngestMS returns the simulated one-off ingestion cost (Phase 1).
func (ix *Index) IngestMS() float64 { return ix.ingestMS }

// Info returns the Phase 1 statistics captured at ingestion.
func (ix *Index) Info() Phase1Info { return ix.info }

// CertainFrames reports how many frames the index already holds exact
// oracle scores for. These enter Phase 2 certain and are never cleaned
// again — a planner subtracts them from the uncertain-relation estimate.
func (ix *Index) CertainFrames() int { return len(ix.art.Exact) }

// BuildIndex runs the engine's Ingest stage once and captures its
// outputs for reuse.
func BuildIndex(src video.Source, udf vision.UDF, cfg Config) (*Index, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	plan := cfg.plan()
	clock := simclock.NewClock()
	pool := plan.WorkerPool()
	if pool != nil {
		defer pool.Close()
	}
	opt := plan.Ingest
	opt.Pool = pool
	art, err := engine.Ingest(src, udf, opt, clock)
	if err != nil {
		return nil, err
	}
	return &Index{
		art:      art,
		info:     phase1InfoOf(art.Info),
		ingestMS: clock.TotalMS(),
	}, nil
}

// Query runs Phase 2 against the index. The source and UDF must be the
// ones the index was built from; only Phase 2 costs are charged.
func (ix *Index) Query(src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	return ix.query(nil, src, udf, cfg, nil)
}

// QueryCtx is Query with a cancellable context: a cancelled ctx stops
// the Phase 2 loop and returns ctx.Err(). Cancellation never degrades —
// Config.DegradedOK applies to oracle failures and deadlines only.
func (ix *Index) QueryCtx(ctx context.Context, src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	return ix.query(ctx, src, udf, cfg, nil)
}

// validateFor checks that (src, udf) is what the index was built from.
func (ix *Index) validateFor(src video.Source, udf vision.UDF) error {
	return ix.art.ValidateFor(src, udf)
}

// planFor compiles cfg into a validated engine plan plus the binding to
// this index — the shared front half of every indexed query path
// (Query, Session.Query, batches, the coalescing scheduler).
func (ix *Index) planFor(src video.Source, udf vision.UDF, cfg Config) (engine.Plan, engine.Binding, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return engine.Plan{}, engine.Binding{}, err
	}
	cfg = cfg.withDefaults()
	plan, err := engine.NewPlan(cfg.plan())
	if err != nil {
		return engine.Plan{}, engine.Binding{}, err
	}
	if err := plan.ValidateFor(ix.art.TotalFrames); err != nil {
		return engine.Plan{}, engine.Binding{}, err
	}
	return plan, engine.Binding{Src: src, UDF: udf, Artifact: ix.art}, nil
}

// query is the shared Phase 2 path for Index.Query and Session.Query.
// When labels is non-nil it is the query's private overlay over the
// session cache snapshot: frames in it enter D0 certain, cleaned frames
// are recorded into its fresh set, and oracle cost is charged only for
// cache misses. A nil ctx means no cancellation.
func (ix *Index) query(ctx context.Context, src video.Source, udf vision.UDF, cfg Config, labels *labelstore.Overlay) (*Result, error) {
	plan, binding, err := ix.planFor(src, udf, cfg)
	if err != nil {
		return nil, err
	}
	binding.Labels = labels
	binding.Ctx = ctx
	out, err := engine.Execute(plan, binding)
	if err != nil {
		return nil, err
	}
	return resultOf(out, plan, ix.info), nil
}

// indexCodec is the gob wire form of an Index.
type indexCodec struct {
	Version     int
	Dataset     string
	UDFName     string
	TotalFrames int
	Retained    []int32
	RepOf       []int32
	Exact       map[int32]float64
	Mixtures    map[int32]uncertain.Mixture
	Info        Phase1Info
	IngestMS    float64
}

const indexVersion = 1

// Save persists the index.
func (ix *Index) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(indexCodec{
		Version:     indexVersion,
		Dataset:     ix.art.Dataset,
		UDFName:     ix.art.UDFName,
		TotalFrames: ix.art.TotalFrames,
		Retained:    ix.art.Retained,
		RepOf:       ix.art.RepOf,
		Exact:       ix.art.Exact,
		Mixtures:    ix.art.Mixtures,
		Info:        ix.info,
		IngestMS:    ix.ingestMS,
	})
}

// LoadIndex restores an index written by Save.
func LoadIndex(r io.Reader) (*Index, error) {
	var c indexCodec
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("everest: decoding index: %w", err)
	}
	if c.Version != indexVersion {
		return nil, fmt.Errorf("everest: index version %d not supported (want %d)", c.Version, indexVersion)
	}
	return &Index{
		art: &engine.Artifact{
			Dataset:     c.Dataset,
			UDFName:     c.UDFName,
			TotalFrames: c.TotalFrames,
			Retained:    c.Retained,
			RepOf:       c.RepOf,
			Exact:       c.Exact,
			Mixtures:    c.Mixtures,
			Info: phase1.Info{
				TotalFrames:    c.Info.TotalFrames,
				TrainSamples:   c.Info.TrainSamples,
				HoldoutSamples: c.Info.HoldoutSamples,
				Retained:       c.Info.Retained,
				Hyper:          c.Info.Hyper,
				HoldoutNLL:     c.Info.HoldoutNLL,
			},
		},
		info:     c.Info,
		ingestMS: c.IngestMS,
	}, nil
}
