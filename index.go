package everest

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/workpool"
)

// Index is a precomputed Phase 1 artifact: the difference-detector
// structure plus, per retained frame, either the exact oracle label or the
// CMDN's score mixture. The paper observes (§4.2) that "Phase 1 can be
// done offline during data ingestion (e.g., Focus [32]) or even at the
// edge"; an Index is that ingestion product. Once built, any number of
// Top-K and Top-K-window queries — different K, thres, window size — run
// Phase 2 only, paying no sampling, training, decoding or proxy-inference
// cost.
//
// An Index is the public wrapper of the engine's ingest Artifact: every
// query against it compiles to an engine.Plan and executes on the one
// shared pipeline. It is tied to one (video, UDF) pair and can be
// persisted with Save and restored with LoadIndex.
type Index struct {
	art      *engine.Artifact
	info     Phase1Info
	ingestMS float64

	// appendPool is the resident worker pool shared by successive
	// Extend calls — built lazily on the first append, rebuilt only when
	// the configured width changes, released by Close. A zero-value
	// (freshly loaded) index has none; nothing else reads these fields.
	appendPool  *workpool.Pool
	appendProcs int
}

// residentPool returns the index's resident append pool at the plan's
// worker width, (re)building it only when the width changed since the
// last append. Nil when the effective worker count is 1 — serial paths
// are exact without a pool.
func (ix *Index) residentPool(plan engine.Plan) *workpool.Pool {
	procs := workpool.Procs(plan.Procs)
	if procs == 1 {
		ix.releasePool()
		return nil
	}
	if ix.appendPool == nil || ix.appendProcs != procs {
		ix.releasePool()
		ix.appendPool = workpool.NewPool(plan.Procs)
		ix.appendProcs = procs
	}
	return ix.appendPool
}

func (ix *Index) releasePool() {
	if ix.appendPool != nil {
		ix.appendPool.Close()
		ix.appendPool = nil
	}
	ix.appendProcs = 0
}

// Close releases the resident append pool, if any. Queries never need
// it; only call paths that Extend the index hold one. Idempotent, and
// safe on a loaded or zero-value index.
func (ix *Index) Close() { ix.releasePool() }

// Dataset returns the indexed video's name.
func (ix *Index) Dataset() string { return ix.art.Dataset }

// UDFName returns the indexed scoring function's name.
func (ix *Index) UDFName() string { return ix.art.UDFName }

// IngestMS returns the simulated one-off ingestion cost (Phase 1).
func (ix *Index) IngestMS() float64 { return ix.ingestMS }

// Info returns the Phase 1 statistics captured at ingestion.
func (ix *Index) Info() Phase1Info { return ix.info }

// CertainFrames reports how many frames the index already holds exact
// oracle scores for. These enter Phase 2 certain and are never cleaned
// again — a planner subtracts them from the uncertain-relation estimate.
func (ix *Index) CertainFrames() int { return len(ix.art.Exact) }

// BuildIndex runs the engine's Ingest stage once and captures its
// outputs for reuse.
func BuildIndex(src video.Source, udf vision.UDF, cfg Config) (*Index, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	plan := cfg.plan()
	clock := simclock.NewClock()
	pool := plan.WorkerPool()
	if pool != nil {
		defer pool.Close()
	}
	opt := plan.Ingest
	opt.Pool = pool
	art, err := engine.Ingest(src, udf, opt, clock)
	if err != nil {
		return nil, err
	}
	return &Index{
		art:      art,
		info:     phase1InfoOf(art.Info),
		ingestMS: clock.TotalMS(),
	}, nil
}

// Query runs Phase 2 against the index. The source and UDF must be the
// ones the index was built from; only Phase 2 costs are charged.
func (ix *Index) Query(src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	return ix.query(nil, src, udf, cfg, nil)
}

// QueryCtx is Query with a cancellable context: a cancelled ctx stops
// the Phase 2 loop and returns ctx.Err(). Cancellation never degrades —
// Config.DegradedOK applies to oracle failures and deadlines only.
func (ix *Index) QueryCtx(ctx context.Context, src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	return ix.query(ctx, src, udf, cfg, nil)
}

// validateFor checks that (src, udf) is what the index was built from.
func (ix *Index) validateFor(src video.Source, udf vision.UDF) error {
	return ix.art.ValidateFor(src, udf)
}

// planFor compiles cfg into a validated engine plan plus the binding to
// this index — the shared front half of every indexed query path
// (Query, Session.Query, batches, the coalescing scheduler).
func (ix *Index) planFor(src video.Source, udf vision.UDF, cfg Config) (engine.Plan, engine.Binding, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return engine.Plan{}, engine.Binding{}, err
	}
	cfg = cfg.withDefaults()
	plan, err := engine.NewPlan(cfg.plan())
	if err != nil {
		return engine.Plan{}, engine.Binding{}, err
	}
	if err := plan.ValidateFor(ix.art.TotalFrames); err != nil {
		return engine.Plan{}, engine.Binding{}, err
	}
	return plan, engine.Binding{Src: src, UDF: udf, Artifact: ix.art}, nil
}

// query is the shared Phase 2 path for Index.Query and Session.Query.
// When labels is non-nil it is the query's private overlay over the
// session cache snapshot: frames in it enter D0 certain, cleaned frames
// are recorded into its fresh set, and oracle cost is charged only for
// cache misses. A nil ctx means no cancellation.
func (ix *Index) query(ctx context.Context, src video.Source, udf vision.UDF, cfg Config, labels *labelstore.Overlay) (*Result, error) {
	plan, binding, err := ix.planFor(src, udf, cfg)
	if err != nil {
		return nil, err
	}
	binding.Labels = labels
	binding.Ctx = ctx
	out, err := engine.Execute(plan, binding)
	if err != nil {
		return nil, err
	}
	return resultOf(out, plan, ix.info), nil
}

// indexCodec is the gob wire form of an Index.
type indexCodec struct {
	Version     int
	Dataset     string
	UDFName     string
	TotalFrames int
	Retained    []int32
	RepOf       []int32
	Exact       map[int32]float64
	Mixtures    map[int32]uncertain.Mixture
	Info        Phase1Info
	IngestMS    float64
}

const indexVersion = 1

// Index file wire format (Save / SaveFile):
//
//	8 bytes  magic "EVESTIDX" (identifies the file type)
//	uint32   format version (little-endian; currently 1)
//	gob      indexCodec payload
//	uint32   CRC32 (IEEE) of every preceding byte
//
// Files written before the header existed are a bare gob stream;
// LoadIndex still reads those through a compatibility path (they carry
// no checksum — corruption surfaces as a gob decode failure instead).
var indexMagic = [8]byte{'E', 'V', 'E', 'S', 'T', 'I', 'D', 'X'}

const indexFormatVersion = 1

// IndexFormatError is the typed failure of loading a persisted index:
// the bytes are not an index file, the header names a format this
// build does not speak, the checksum does not match, or the payload is
// corrupt (including malformed gob that would otherwise panic the
// decoder). errors.As extracts it from LoadIndex/LoadFile errors.
type IndexFormatError struct {
	// Path is the file being loaded ("" for stream loads).
	Path string
	// FormatVersion is the header's format version, when one was read
	// (0 for unversioned legacy files and unrecognized bytes).
	FormatVersion uint32
	// Reason says what failed.
	Reason string
	// Err is the underlying decode error, if any.
	Err error
}

// Error implements error.
func (e *IndexFormatError) Error() string {
	at := ""
	if e.Path != "" {
		at = " " + e.Path
	}
	msg := fmt.Sprintf("everest: index file%s: %s", at, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying decode error to errors.Is/As.
func (e *IndexFormatError) Unwrap() error { return e.Err }

// Save persists the index to w in the headered, checksummed wire
// format (magic, format version, gob payload, CRC32 trailer).
func (ix *Index) Save(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], indexFormatVersion)
	buf.Write(ver[:])
	if err := gob.NewEncoder(&buf).Encode(ix.codec()); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(trailer[:])
	_, err := w.Write(buf.Bytes())
	return err
}

func (ix *Index) codec() indexCodec {
	return indexCodec{
		Version:     indexVersion,
		Dataset:     ix.art.Dataset,
		UDFName:     ix.art.UDFName,
		TotalFrames: ix.art.TotalFrames,
		Retained:    ix.art.Retained,
		RepOf:       ix.art.RepOf,
		Exact:       ix.art.Exact,
		Mixtures:    ix.art.Mixtures,
		Info:        ix.info,
		IngestMS:    ix.ingestMS,
	}
}

// SaveFile persists the index to path atomically: the bytes are
// written to a temp file, fsynced, renamed over path, and the
// directory fsynced — a crash mid-save leaves either the old file or
// the new one, never a torn mixture.
func (ix *Index) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("everest: saving index: %w", err)
	}
	_, werr := f.Write(buf.Bytes())
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("everest: saving index: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("everest: saving index: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadFile restores an index saved with SaveFile (or an old
// unversioned file). Format failures are typed *IndexFormatError.
func LoadFile(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("everest: loading index: %w", err)
	}
	return decodeIndex(data, path)
}

// LoadIndex restores an index written by Save. Headered files are
// checksum-verified; files from before the header existed (a bare gob
// stream) load through the unversioned compatibility path. Malformed
// input yields a typed *IndexFormatError — never a panic.
func LoadIndex(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("everest: reading index: %w", err)
	}
	return decodeIndex(data, "")
}

// decodeIndex sniffs the header and dispatches to the right decode
// path.
func decodeIndex(data []byte, path string) (*Index, error) {
	if len(data) < len(indexMagic) || string(data[:len(indexMagic)]) != string(indexMagic[:]) {
		// No magic: either a legacy unversioned index (pre-header bare
		// gob) or not an index at all. Try the compat path; report its
		// failure in terms of both possibilities.
		ix, err := decodeIndexGob(data, path, 0)
		if err != nil {
			return nil, &IndexFormatError{
				Path:   path,
				Reason: "no index header, and the bytes do not decode as an unversioned (pre-header) index either",
				Err:    errors.Unwrap(err),
			}
		}
		return ix, nil
	}
	if len(data) < len(indexMagic)+8 {
		return nil, &IndexFormatError{Path: path, Reason: "truncated index header"}
	}
	version := binary.LittleEndian.Uint32(data[len(indexMagic):])
	if version != indexFormatVersion {
		return nil, &IndexFormatError{
			Path:          path,
			FormatVersion: version,
			Reason:        fmt.Sprintf("format version %d not supported (this build reads version %d)", version, indexFormatVersion),
		}
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, &IndexFormatError{Path: path, FormatVersion: version, Reason: "checksum mismatch (file corrupt or torn)"}
	}
	return decodeIndexGob(body[len(indexMagic)+4:], path, version)
}

// decodeIndexGob decodes the gob payload. Gob panics on some malformed
// inputs; the recover turns those into the same typed error as a
// decode failure.
func decodeIndexGob(data []byte, path string, formatVersion uint32) (ix *Index, err error) {
	defer func() {
		if r := recover(); r != nil {
			ix, err = nil, &IndexFormatError{
				Path:          path,
				FormatVersion: formatVersion,
				Reason:        fmt.Sprintf("payload decode panicked: %v", r),
			}
		}
	}()
	var c indexCodec
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); derr != nil {
		return nil, &IndexFormatError{Path: path, FormatVersion: formatVersion, Reason: "payload decode failed", Err: derr}
	}
	if c.Version != indexVersion {
		return nil, &IndexFormatError{
			Path:          path,
			FormatVersion: formatVersion,
			Reason:        fmt.Sprintf("index version %d not supported (want %d)", c.Version, indexVersion),
		}
	}
	return &Index{
		art: &engine.Artifact{
			Dataset:     c.Dataset,
			UDFName:     c.UDFName,
			TotalFrames: c.TotalFrames,
			Retained:    c.Retained,
			RepOf:       c.RepOf,
			Exact:       c.Exact,
			Mixtures:    c.Mixtures,
			Info: phase1.Info{
				TotalFrames:    c.Info.TotalFrames,
				TrainSamples:   c.Info.TrainSamples,
				HoldoutSamples: c.Info.HoldoutSamples,
				Retained:       c.Info.Retained,
				Hyper:          c.Info.Hyper,
				HoldoutNLL:     c.Info.HoldoutNLL,
			},
		},
		info:     c.Info,
		ingestMS: c.IngestMS,
	}, nil
}
