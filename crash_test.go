package everest

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/durable"
	"github.com/everest-project/everest/internal/faultinject"
	"github.com/everest-project/everest/internal/labelstore"
)

// The crash suite proves the durability layer's central property: kill
// the process at ANY filesystem operation — every torn write, every
// unsynced rename, every mid-sweep checkpoint — and reopening the
// directory yields a consistent prefix of the publish history. Never a
// panic, never a partial batch, never a version number bound to
// different labels than it had before the crash. Everything here runs
// under `make crash` with the race detector.

// crashScript drives a deterministic publish/evict history against a
// cache: 10 publish batches of 3 frames with a MaxLabels policy tight
// enough that evictions interleave. Every crash-run cache and the
// reference cache execute exactly this sequence.
func crashScript(c *labelstore.SharedCache) {
	c.SetPolicy(labelstore.Policy{MaxLabels: 9})
	for i := 1; i <= 10; i++ {
		c.Publish(map[int]float64{
			10 * i:     float64(i),
			10*i + 1:   float64(i) + 0.5,
			10*i + 2:   float64(i) + 0.25,
			10*i%7 + 3: float64(i) + 0.125, // overlap across batches
		})
	}
}

func flatten(m labelstore.Map) map[int]float64 {
	out := make(map[int]float64)
	m.Range(func(f int, v float64) bool {
		out[f] = v
		return true
	})
	return out
}

// crashReference replays crashScript once against a full-history store
// (no checkpoint truncation) and returns the exact label state at
// every version of the sequence — the ground truth each crash point's
// recovery is judged against.
func crashReference(t *testing.T) (expected []map[int]float64, final uint64) {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cache := labelstore.NewSharedCache()
	if err := cache.EnableDurable(store); err != nil {
		t.Fatal(err)
	}
	crashScript(cache)
	if err := cache.DurableErr(); err != nil {
		t.Fatal(err)
	}
	final = cache.Version()
	expected = make([]map[int]float64, final+1)
	for v := uint64(0); v <= final; v++ {
		m, err := store.StateAt(v)
		if err != nil {
			t.Fatalf("reference StateAt(%d): %v", v, err)
		}
		expected[v] = flatten(m)
	}
	return expected, final
}

// TestCrashEveryPrefixConsistent kills the durable store at every
// mutating filesystem operation of the full workload — appends, fsyncs,
// segment rotations, checkpoint temp writes, renames, sweeps — and
// asserts that (a) the cache keeps serving the complete history from
// RAM (availability over durability), and (b) a process restart
// recovers exactly the state at some version of the history: a
// consistent prefix, whole batches only.
func TestCrashEveryPrefixConsistent(t *testing.T) {
	expected, final := crashReference(t)

	// Fault-free run through the fault layer counts the crash points.
	// CheckpointEvery 4 puts checkpoint writes, renames and sweeps into
	// the op stream so crashes land inside them too.
	probe := faultinject.NewFaultFS(nil, 11)
	{
		store, err := durable.Open(t.TempDir(), durable.Options{FS: probe, CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		cache := labelstore.NewSharedCache()
		if err := cache.EnableDurable(store); err != nil {
			t.Fatal(err)
		}
		crashScript(cache)
		if err := cache.DurableErr(); err != nil {
			t.Fatal(err)
		}
		store.Close()
	}
	ops := probe.Stats().Ops
	if ops < 20 {
		t.Fatalf("workload has only %d crash points; harness expects a real op stream", ops)
	}

	for k := 0; k < ops; k++ {
		dir := t.TempDir()
		fs := faultinject.NewFaultFS(nil, 11).CrashAt(k)
		cache := labelstore.NewSharedCache()
		store, err := durable.Open(dir, durable.Options{FS: fs, CheckpointEvery: 4})
		if err == nil {
			// Attach may itself fail at later crash points; the cache then
			// runs RAM-only, which is still the dead-WAL contract.
			_ = cache.EnableDurable(store)
		}
		crashScript(cache)

		// Availability: whatever the disk did, the RAM cache served the
		// whole history.
		if cache.Version() != final {
			t.Fatalf("crash@%d: RAM cache stopped at version %d, want %d", k, cache.Version(), final)
		}
		if got := flatten(snapshotOf(cache)); !reflect.DeepEqual(got, expected[final]) {
			t.Fatalf("crash@%d: RAM cache diverged from the history", k)
		}

		// Restart: recovery must land exactly on some version's state.
		recovered, err := durable.Open(dir, durable.Options{})
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", k, err)
		}
		m, v := recovered.Recovered()
		if v > final {
			t.Fatalf("crash@%d: recovered version %d beyond history end %d", k, v, final)
		}
		if got := flatten(m); !reflect.DeepEqual(got, expected[v]) {
			t.Fatalf("crash@%d: recovered state at version %d is not the history's state at %d:\n got %v\nwant %v",
				k, v, v, got, expected[v])
		}
		// The recovered prefix accepts the continuation: version v+1
		// appends cleanly (continuity, no repeated-version ambiguity).
		if v < final {
			if err := recovered.AppendPublish(v+1, []int{9999}, []float64{1}); err != nil {
				t.Fatalf("crash@%d: recovered store refuses continuation at %d: %v", k, v+1, err)
			}
		}
		recovered.Close()
	}
}

// TestCrashDuringRecoveryStillConsistent crashes the process AGAIN
// while recovery is repairing the first crash's damage (truncating the
// torn tail, removing unreachable segments, syncing), then recovers
// cleanly: every double-crash must still land on a consistent prefix —
// recovery is idempotent and its own writes are crash-safe.
func TestCrashDuringRecoveryStillConsistent(t *testing.T) {
	expected, final := crashReference(t)

	// tornDir rebuilds the first crash's directory state from scratch
	// (each recovery attempt mutates it, so every (k, j) pair needs a
	// fresh one).
	tornDir := func(t *testing.T, k int) string {
		dir := t.TempDir()
		fs := faultinject.NewFaultFS(nil, 11).CrashAt(k)
		c := labelstore.NewSharedCache()
		if store, err := durable.Open(dir, durable.Options{FS: fs, CheckpointEvery: 4}); err == nil {
			_ = c.EnableDurable(store)
		}
		crashScript(c)
		return dir
	}

	// First-crash op count, from a fault-free probe of the workload.
	probe := faultinject.NewFaultFS(nil, 11)
	{
		store, err := durable.Open(t.TempDir(), durable.Options{FS: probe, CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		c := labelstore.NewSharedCache()
		if err := c.EnableDurable(store); err != nil {
			t.Fatal(err)
		}
		crashScript(c)
		store.Close()
	}
	ops := probe.Stats().Ops

	doubles := 0
	for k := 0; k < ops; k++ {
		// How many mutating ops does recovering THIS crash's damage take?
		// Zero means the crash left nothing to repair — no second crash
		// window exists.
		rp := faultinject.NewFaultFS(nil, 17)
		if s, err := durable.Open(tornDir(t, k), durable.Options{FS: rp}); err == nil {
			s.Close()
		}
		recOps := rp.Stats().Ops

		for j := 0; j < recOps; j++ {
			dir := tornDir(t, k)
			// Crash during recovery.
			if s, err := durable.Open(dir, durable.Options{FS: faultinject.NewFaultFS(nil, 17).CrashAt(j)}); err == nil {
				s.Close()
			}
			// Final clean recovery.
			recovered, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatalf("crash@%d, recovery-crash@%d: final recovery failed: %v", k, j, err)
			}
			m, v := recovered.Recovered()
			if v > final {
				t.Fatalf("crash@%d, recovery-crash@%d: version %d beyond history end", k, j, v)
			}
			if got := flatten(m); !reflect.DeepEqual(got, expected[v]) {
				t.Fatalf("crash@%d, recovery-crash@%d: state at recovered version %d inconsistent", k, j, v)
			}
			recovered.Close()
			doubles++
		}
	}
	if doubles == 0 {
		t.Fatal("no crash point left recovery work to double-crash; harness is vacuous")
	}
}

// snapshotOf grabs the cache's current map without disturbing policy
// state (Snapshot may evict under a TTL policy; the crash scripts use
// MaxLabels only, so this is stable).
func snapshotOf(c *labelstore.SharedCache) labelstore.Map {
	m, _ := c.Snapshot()
	return m
}

// TestCrashRecoveryGoldenDeterminism is the full-stack clause of the
// determinism contract: a serving process publishes query labels
// durably, "crashes" (store closed and forgotten), and a fresh process
// recovers the cache — the next query must be bit-identical, results
// AND simulated charges, to the same query on a process that never
// crashed, at every worker count.
func TestCrashRecoveryGoldenDeterminism(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	for _, procs := range []int{1, 2, 8} {
		warm1, warm2, probe := smallCfg(5), smallCfg(8), smallCfg(3)
		warm1.Procs, warm2.Procs, probe.Procs = procs, procs, procs

		// Reference: no crash, one private session runs all three.
		ref, err := NewSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Query(warm1); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Query(warm2); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Query(probe)
		if err != nil {
			t.Fatal(err)
		}

		// Crash run: session A persists the warmup labels, the process
		// dies, session B (a fresh cache) recovers them from disk.
		dir := t.TempDir() + "/wal"
		a, err := NewSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.EnableDurable(dir); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Query(warm1); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Query(warm2); err != nil {
			t.Fatal(err)
		}
		if err := a.DurableErr(); err != nil {
			t.Fatal(err)
		}
		closeDurableForTest(dir) // the crash

		b, err := NewSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.EnableDurable(dir); err != nil {
			t.Fatal(err)
		}
		if b.CacheVersion() != a.CacheVersion() || b.CachedLabels() != a.CachedLabels() {
			t.Fatalf("procs=%d: recovered cache v%d/%d labels, pre-crash v%d/%d",
				procs, b.CacheVersion(), b.CachedLabels(), a.CacheVersion(), a.CachedLabels())
		}
		got, err := b.Query(probe)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(goldenOf(got), goldenOf(want)) {
			t.Fatalf("procs=%d: post-recovery query diverged from the uncrashed run:\n got %+v\nwant %+v",
				procs, goldenOf(got), goldenOf(want))
		}
		closeDurableForTest(dir)
	}
}

// TestCrashPinnedVersionNeverRebinds: a version pinned before the
// crash either resolves to the exact pre-crash labels after recovery
// or fails closed with a typed *labelstore.VersionError — in
// particular when the crash tore the tail those versions lived in.
func TestCrashPinnedVersionNeverRebinds(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	cache := labelstore.NewSharedCache()
	if err := cache.EnableDurable(store); err != nil {
		t.Fatal(err)
	}
	crashScript(cache)
	pinned := cache.Version() - 2
	want, err := cache.SnapshotAt(pinned)
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	recovered := labelstore.NewSharedCache()
	rstore, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rstore.Close()
	if err := recovered.EnableDurable(rstore); err != nil {
		t.Fatal(err)
	}
	got, err := recovered.SnapshotAt(pinned)
	if err != nil {
		t.Fatalf("pinned version %d after crash: %v", pinned, err)
	}
	if !reflect.DeepEqual(flatten(got), flatten(want)) {
		t.Fatalf("pinned version %d rebound to different labels after recovery", pinned)
	}
}
