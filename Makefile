# Everest reproduction — development targets.

GO ?= go

.PHONY: build test vet race fuzz bench bench-diff bench-smoke experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency packages and the engine determinism tests;
# the full suite under -race is too slow for a quick gate.
race:
	$(GO) test -race ./internal/workpool/ ./internal/labelstore/ ./internal/engine/ ./internal/oraclemux/ ./internal/cmdn/ ./internal/phase1/ ./internal/nn/ ./internal/diffdet/ ./internal/windows/ ./internal/core/
	$(GO) test -race -run 'ProcsBitIdentical|GoldenConcurrent|GoldenCoalesced|SessionConcurrent|QueryBatch|SharedSession|AdmissionLimit|Coalesced|CoalesceWait|OracleMux' .

# Short-budget fuzz of the workpool determinism contract, the engine
# plan compiler's normalize/validate invariants and the oracle mux's
# batch-consolidation splitter.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMapOrdering -fuzztime 30s ./internal/workpool/
	$(GO) test -run '^$$' -fuzz FuzzPlanNormalize -fuzztime 30s ./internal/engine/
	$(GO) test -run '^$$' -fuzz FuzzConsolidate -fuzztime 30s ./internal/oraclemux/

# Capture the engine benchmark suite into BENCH_engine.json so future
# changes have a perf trajectory to compare against.
bench:
	$(GO) run ./cmd/bench

# Re-run the suite and print per-benchmark deltas against the committed
# BENCH_engine.json (fails if a committed benchmark went missing).
bench-diff:
	$(GO) run ./cmd/bench -compare BENCH_engine.json

# One-iteration serving-path smoke run: catches regressions that compile
# but explode allocations (also the CI benchmark smoke job, which
# additionally runs bench-diff against the committed baseline).
bench-smoke:
	$(GO) test -run '^$$' -bench 'SessionConcurrent|SessionSharedCache|SessionCoalesced|OracleMux' -benchtime 1x -benchmem .

experiments:
	$(GO) run ./cmd/experiments
