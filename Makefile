# Everest reproduction — development targets.

GO ?= go

.PHONY: build test vet race fuzz bench experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency packages and the engine determinism tests;
# the full suite under -race is too slow for a quick gate.
race:
	$(GO) test -race ./internal/workpool/ ./internal/cmdn/ ./internal/phase1/ ./internal/nn/ ./internal/diffdet/ ./internal/windows/ ./internal/core/
	$(GO) test -race -run 'ProcsBitIdentical|GoldenConcurrent|SessionConcurrent|QueryBatch' .

# Short-budget fuzz of the workpool determinism contract.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMapOrdering -fuzztime 30s ./internal/workpool/

# Capture the engine benchmark suite into BENCH_engine.json so future
# changes have a perf trajectory to compare against.
bench:
	$(GO) run ./cmd/bench

experiments:
	$(GO) run ./cmd/experiments
