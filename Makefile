# Everest reproduction — development targets.

GO ?= go

.PHONY: build test testbuild vet race chaos crash fuzz bench bench-diff bench-smoke follow experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Compile every package's test binary without running any test: catches
# _test.go files that no longer build (go build ./... does not compile
# them, and a broken test file fails the whole tier-1 gate).
testbuild:
	$(GO) test -run '^$$' -count=1 ./...

# Race-check the concurrency packages and the engine determinism tests;
# the full suite under -race is too slow for a quick gate.
race:
	$(GO) test -race ./internal/workpool/ ./internal/labelstore/ ./internal/engine/ ./internal/oraclemux/ ./internal/faultinject/ ./internal/durable/ ./internal/cmdn/ ./internal/phase1/ ./internal/nn/ ./internal/diffdet/ ./internal/windows/ ./internal/core/ ./internal/stream/
	$(GO) test -race -run 'ProcsBitIdentical|GoldenConcurrent|GoldenCoalesced|SessionConcurrent|QueryBatch|SharedSession|AdmissionLimit|Coalesced|CoalesceWait|OracleMux' .

# The fault-tolerance suite under the race detector: chaos-injected
# oracle failures through the full serving pipeline (retry convergence,
# typed panic recovery, graceful degradation, admission-slot and
# goroutine leak audits, concurrent cancellation) plus the scheduler's
# and mux's cancellation tests and the faultinject package itself.
chaos:
	$(GO) test -race -run 'TestChaos' .
	$(GO) test -race -run 'Cancel|Withdraw' ./internal/engine/ ./internal/oraclemux/ ./internal/labelstore/
	$(GO) test -race ./internal/faultinject/

# The crash-injection suite under the race detector: kill the process at
# every mutating filesystem op of a durable workload (and at every op of
# every recovery from every one of those crashes), then assert the
# recovered label cache is always a consistent prefix of the publish
# history — plus the golden test that a crash/recover cycle leaves query
# results bit-identical to a run that never crashed.
crash:
	$(GO) test -race -run 'TestCrash' .
	$(GO) test -race ./internal/durable/ ./internal/faultinject/
	$(GO) test -race -run 'Durable|SnapshotAt|Evict' ./internal/labelstore/

# Short-budget fuzz of the workpool determinism contract, the engine
# plan compiler's normalize/validate invariants, the oracle mux's
# batch-consolidation splitter, the fault-schedule DSL round-trip, and
# the durable store's WAL-replay and checkpoint decoders (never panic,
# recover exactly the checksum-valid prefix).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMapOrdering -fuzztime 30s ./internal/workpool/
	$(GO) test -run '^$$' -fuzz FuzzPlanNormalize -fuzztime 30s ./internal/engine/
	$(GO) test -run '^$$' -fuzz FuzzArtifactAppend -fuzztime 30s ./internal/engine/
	$(GO) test -run '^$$' -fuzz FuzzConsolidate -fuzztime 30s ./internal/oraclemux/
	$(GO) test -run '^$$' -fuzz FuzzFaultSchedule -fuzztime 30s ./internal/faultinject/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/durable/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime 30s ./internal/durable/
	$(GO) test -run '^$$' -fuzz FuzzParseEQL -fuzztime 30s ./internal/eql/

# Capture the engine benchmark suite into BENCH_engine.json so future
# changes have a perf trajectory to compare against.
bench:
	$(GO) run ./cmd/bench

# Re-run the suite and print per-benchmark deltas against the committed
# BENCH_engine.json (fails if a committed benchmark went missing).
bench-diff:
	$(GO) run ./cmd/bench -compare BENCH_engine.json

# One-iteration serving-path smoke run: catches regressions that compile
# but explode allocations (also the CI benchmark smoke job, which
# additionally runs bench-diff against the committed baseline).
bench-smoke:
	$(GO) test -run '^$$' -bench 'SessionConcurrent|SessionSharedCache|SessionCoalesced|OracleMux|StreamingIngest|FollowDeltas|EQLScript' -benchtime 1x -benchmem .

# Live-camera smoke run: replay a bounded feed through the streaming
# ingestor with a continuous top-K follower and print the answer deltas
# — exercises the chunked ingest, warm CMDN refresh, and delta paths
# end to end from the CLI.
follow:
	$(GO) run ./cmd/everest -dataset Archie -k 5 -frames 3600 -follow -segment 1200 -chunk 300 -drift 3

experiments:
	$(GO) run ./cmd/experiments
