package everest

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/oraclemux"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// TestOracleMuxCrossVideoBitIdentical is the M×N serving scenario the
// mux exists for, as a determinism lock: M videos × N queries each,
// all in flight together with UseMux, share one process-wide oracle
// dispatch queue — across indexes and videos — and every query must
// return bit-identically (results AND simulated per-plan charges) what
// its mux-off serial baseline returns. Consolidation is measured by
// BenchmarkOracleMux; this test locks that it is free of semantic
// effect.
func TestOracleMuxCrossVideoBitIdentical(t *testing.T) {
	type target struct {
		src *video.Synthetic
		ix  *Index
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	mkCfgs := func() []Config {
		frame := smallCfg(5)
		win := smallCfg(3)
		win.Window = 30
		return []Config{frame, win}
	}
	var targets []target
	for _, seed := range []uint64{41, 43} {
		src := testSource(t, 3000, seed)
		ix, err := BuildIndex(src, udf, smallCfg(5))
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, target{src: src, ix: ix})
	}

	// Mux-off serial baselines, one per (video, query).
	baseline := make([][]goldenResult, len(targets))
	for ti, tg := range targets {
		baseline[ti] = make([]goldenResult, len(mkCfgs()))
		for qi, cfg := range mkCfgs() {
			res, err := tg.ix.Query(tg.src, udf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			baseline[ti][qi] = goldenOf(res)
		}
	}

	// Mux-on: all M×N queries concurrently through the process-wide
	// dispatch queue.
	before := oraclemux.Shared().Stats()
	results := make([][]*Result, len(targets))
	errs := make([][]error, len(targets))
	var wg sync.WaitGroup
	for ti, tg := range targets {
		cfgs := mkCfgs()
		results[ti] = make([]*Result, len(cfgs))
		errs[ti] = make([]error, len(cfgs))
		for qi, cfg := range cfgs {
			cfg.UseMux = true
			wg.Add(1)
			go func(ti, qi int, tg target, cfg Config) {
				defer wg.Done()
				results[ti][qi], errs[ti][qi] = tg.ix.Query(tg.src, udf, cfg)
			}(ti, qi, tg, cfg)
		}
	}
	wg.Wait()
	after := oraclemux.Shared().Stats()
	if after.Requests <= before.Requests {
		t.Fatal("no confirmation batch reached the process-wide mux; the lock is vacuous")
	}
	for ti := range targets {
		for qi := range results[ti] {
			if errs[ti][qi] != nil {
				t.Fatalf("video %d query %d: %v", ti, qi, errs[ti][qi])
			}
			if g := goldenOf(results[ti][qi]); !reflect.DeepEqual(g, baseline[ti][qi]) {
				t.Fatalf("video %d query %d: muxed result diverged from its mux-off serial baseline\ngot %+v\nwant %+v",
					ti, qi, g, baseline[ti][qi])
			}
		}
	}
}

// TestSessionCoalesceWaitDeterministicGrouping drives the
// latency-bounded group close through the public serving path under an
// injected wait clock: the leader of a Coalesce+CoalesceWait query
// holds the group open while the remaining callers arrive, so all N
// land in ONE engine run — observed as exactly one cache publish and a
// single oracle payer — with every answer bit-identical to the lone
// indexed query.
func TestSessionCoalesceWaitDeterministicGrouping(t *testing.T) {
	src := testSource(t, 3000, 47)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	lone, err := ix.Query(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	sched := sess.scheduler()
	release := make(chan struct{})
	sched.SetWaitClockForTest(func(time.Duration) { <-release })

	cfg := smallCfg(5)
	cfg.Coalesce = true
	cfg.CoalesceWait = 50 * time.Millisecond
	const callers = 4
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = sess.Query(cfg)
		}()
	}
	versionBefore := sess.CacheVersion()
	launch(0)
	waitUntil(t, func() bool { return sched.QueuedForTest() == 1 })
	for i := 1; i < callers; i++ {
		launch(i)
	}
	waitUntil(t, func() bool { return sched.QueuedForTest() == callers })
	close(release)
	wg.Wait()

	paid := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].IDs, lone.IDs) || !reflect.DeepEqual(results[i].Scores, lone.Scores) {
			t.Fatalf("caller %d got a different answer", i)
		}
		if results[i].EngineStats.Cleaned > 0 {
			paid++
		}
	}
	if paid != 1 {
		t.Fatalf("%d callers paid the oracle, want exactly 1 — the wait did not close all %d into one group",
			paid, callers)
	}
	if got := sess.CacheVersion() - versionBefore; got != 1 {
		t.Fatalf("cache published %d times, want 1 — the group did not run as one engine run", got)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
