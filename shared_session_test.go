package everest

import (
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// TestSharedSessionReuse is the cross-session work-sharing contract:
// separate Session objects created with NewSharedSession over the same
// (video, UDF) pair draw on one label store, so a query one session
// paid the oracle for is free in every other session — while private
// NewSession caches stay isolated.
func TestSharedSessionReuse(t *testing.T) {
	labelstore.ResetForTest()
	defer labelstore.ResetForTest()
	src := testSource(t, 9000, 41)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewSharedSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EngineStats.Cleaned == 0 {
		t.Fatal("first shared query cleaned nothing; the reuse assertion below would be vacuous")
	}

	// A *different* shared session: same pair, fresh object, zero own
	// history. Its identical query must be oracle-free and bit-identical.
	b, err := NewSharedSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	if b.CachedLabels() != first.EngineStats.Cleaned {
		t.Fatalf("second session sees %d cached labels, first query cleaned %d",
			b.CachedLabels(), first.EngineStats.Cleaned)
	}
	reused, err := b.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reused.EngineStats.Cleaned != 0 || reused.EngineStats.OracleCalls != 0 {
		t.Fatalf("cross-session repeat cleaned %d frames in %d oracle calls, want 0 in 0",
			reused.EngineStats.Cleaned, reused.EngineStats.OracleCalls)
	}
	for i := range first.IDs {
		if first.IDs[i] != reused.IDs[i] || first.Scores[i] != reused.Scores[i] {
			t.Fatalf("cross-session reuse changed the answer at %d", i)
		}
	}
	if b.Queries() != 1 || a.Queries() != 1 {
		t.Fatalf("per-session query counters polluted: a=%d b=%d", a.Queries(), b.Queries())
	}

	// A private session must NOT see the shared labels.
	private, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	if private.CachedLabels() != 0 {
		t.Fatalf("private session starts with %d labels, want 0", private.CachedLabels())
	}
	alone, err := private.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alone.EngineStats.Cleaned != first.EngineStats.Cleaned {
		t.Fatalf("private session cleaned %d, want the full %d — private caches must stay isolated",
			alone.EngineStats.Cleaned, first.EngineStats.Cleaned)
	}
}

// TestSharedSessionPairIsolation checks the cache key: a different UDF
// over the same video must not share labels (a score is only
// query-independent within one scoring function).
func TestSharedSessionPairIsolation(t *testing.T) {
	labelstore.ResetForTest()
	defer labelstore.ResetForTest()
	src := testSource(t, 6000, 43)
	car := vision.CountUDF{Class: video.ClassCar}
	bus := vision.CountUDF{Class: video.ClassBus}
	cfg := smallCfg(5)
	ixCar, err := BuildIndex(src, car, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ixBus, err := BuildIndex(src, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sCar, err := NewSharedSession(ixCar, src, car)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sCar.Query(cfg); err != nil {
		t.Fatal(err)
	}
	sBus, err := NewSharedSession(ixBus, src, bus)
	if err != nil {
		t.Fatal(err)
	}
	if sBus.CachedLabels() != 0 {
		t.Fatalf("bus-UDF session sees %d labels published by the car UDF", sBus.CachedLabels())
	}
}

// TestSessionConcurrentSharedPublish drives many shared sessions
// concurrently (free-running, mixed frame/window queries). Under -race
// this exercises the snapshot/publish path end to end; the assertions
// check every answer keeps the engine guarantee and the store converges
// to one agreed label set.
func TestSessionConcurrentSharedPublish(t *testing.T) {
	labelstore.ResetForTest()
	defer labelstore.ResetForTest()
	src := testSource(t, 9000, 47)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		sess, err := NewSharedSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		qcfg := smallCfg(5)
		if i%2 == 1 {
			qcfg = smallCfg(3)
			qcfg.Window = 30
		}
		qcfg.AdmissionLimit = 4 // exercise the admission gate under load
		wg.Add(1)
		go func(i int, sess *Session, qcfg Config) {
			defer wg.Done()
			results[i], errs[i] = sess.Query(qcfg)
		}(i, sess, qcfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i, r := range results {
		if r.Confidence < 0.9 {
			t.Fatalf("session %d: confidence %v < 0.9", i, r.Confidence)
		}
		if r.IsWindow {
			continue // window scores are sample means, not exact counts
		}
		for k, id := range r.IDs {
			if int(r.Scores[k]) != src.TrueCountFast(id) {
				t.Fatalf("session %d: frame %d score %v, truth %d", i, id, r.Scores[k], src.TrueCountFast(id))
			}
		}
	}
	probe, err := NewSharedSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	if probe.CachedLabels() == 0 {
		t.Fatal("concurrent shared sessions left the process-wide cache empty")
	}
}

// TestSessionAdmissionLimitDeterminism checks the admission knob is
// scheduling-only: a batch run under the strictest limit returns
// exactly what the unconstrained batch returns.
func TestSessionAdmissionLimitDeterminism(t *testing.T) {
	src := testSource(t, 9000, 53)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	free, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, err := free.RunConcurrent(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := cfg
	gcfg.AdmissionLimit = 1
	limited, err := gated.RunConcurrent(gcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range unconstrained {
		assertSameResult(t, "admission-limited batch", limited[i], unconstrained[i])
	}
}
