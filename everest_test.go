package everest

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func testSource(t *testing.T, frames int, seed uint64) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "e2e", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: seed, MeanPopulation: 3, BurstRate: 3,
		DailyCycle: true, DistractorPopulation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallCfg(k int) Config {
	return Config{
		K:          k,
		Threshold:  0.9,
		Seed:       7,
		SampleFrac: 0.05,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 30},
	}
}

// trueScoresOf returns the ground-truth frame scores without charging any
// clock.
func trueScoresOf(src *video.Synthetic) []metrics.Ranked {
	out := make([]metrics.Ranked, src.NumFrames())
	for i := range out {
		out[i] = metrics.Ranked{ID: i, Score: float64(src.TrueCountFast(i))}
	}
	return out
}

func TestRunValidation(t *testing.T) {
	src := testSource(t, 1000, 1)
	udf := vision.CountUDF{Class: video.ClassCar}
	cases := []Config{
		{K: 0},
		{K: 5, Threshold: 2},
		{K: 5, Window: -1},
		{K: 500, Window: 100}, // only 10 windows
	}
	for _, cfg := range cases {
		if _, err := Run(src, udf, cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
	if _, err := Run(nil, udf, Config{K: 1}); err == nil {
		t.Fatal("nil source should be rejected")
	}
	if _, err := Run(src, nil, Config{K: 1}); err == nil {
		t.Fatal("nil UDF should be rejected")
	}
}

func TestEndToEndFrameQuery(t *testing.T) {
	src := testSource(t, 12000, 11)
	udf := vision.CountUDF{Class: video.ClassCar}
	res, err := Run(src, udf, smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 10 || len(res.Scores) != 10 {
		t.Fatalf("result size %d", len(res.IDs))
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", res.Confidence)
	}
	// Certain-result condition: returned scores are the true scores.
	for i, id := range res.IDs {
		if int(res.Scores[i]) != src.TrueCountFast(id) {
			t.Fatalf("frame %d: returned score %v, truth %d", id, res.Scores[i], src.TrueCountFast(id))
		}
	}
	// Scores descending.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i] > res.Scores[i-1] {
			t.Fatalf("scores not descending: %v", res.Scores)
		}
	}
	// Result quality vs the exact Top-K over ALL frames (not just
	// retained): score error must be small.
	truth := metrics.TrueTopK(trueScoresOf(src), 10)
	scoreErr := metrics.ScoreError(res.Scores, truth)
	if scoreErr > 1.0 {
		t.Fatalf("score error %v vs true Top-K", scoreErr)
	}
	t.Logf("confidence %.3f, cleaned %d/%d, score error %.3f",
		res.Confidence, res.EngineStats.Cleaned, res.Phase1.Retained, scoreErr)
}

func TestEndToEndIsFasterThanScan(t *testing.T) {
	src := testSource(t, 12000, 13)
	udf := vision.CountUDF{Class: video.ClassCar}
	res, err := Run(src, udf, smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	cost := simclock.Default()
	scanMS := float64(src.NumFrames()) * (cost.OracleMS + cost.DecodeMS)
	speedup := metrics.Speedup(scanMS, res.Clock.TotalMS())
	if speedup < 3 {
		t.Fatalf("speedup %.2f too small; clock:\n%s", speedup, res.Clock)
	}
	t.Logf("simulated speedup %.1f×", speedup)
}

func TestEndToEndCleansFewFrames(t *testing.T) {
	src := testSource(t, 12000, 17)
	udf := vision.CountUDF{Class: video.ClassCar}
	res, err := Run(src, udf, smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.EngineStats.Cleaned) / float64(res.Phase1.TotalFrames)
	if frac > 0.10 {
		t.Fatalf("cleaned %.1f%% of frames — selection is not selective", 100*frac)
	}
}

func TestEndToEndWindowQuery(t *testing.T) {
	src := testSource(t, 12000, 19)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Window = 30
	res, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || res.WindowSize != 30 {
		t.Fatal("window metadata missing")
	}
	if len(res.IDs) != 5 {
		t.Fatalf("result size %d", len(res.IDs))
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	for _, w := range res.IDs {
		if w < 0 || w >= 12000/30 {
			t.Fatalf("window id %d out of range", w)
		}
	}
	// Window scores are 10%-sample means (3 of 30 frames), so they carry
	// sampling noise of a few counts on ramping windows (§4.2.3 notes the
	// same fluctuation); they must still track the true window means.
	for i, w := range res.IDs {
		trueMean := 0.0
		for f := w * 30; f < (w+1)*30; f++ {
			trueMean += float64(src.TrueCountFast(f))
		}
		trueMean /= 30
		if math.Abs(res.Scores[i]-trueMean) > 6 {
			t.Fatalf("window %d: score %v vs true mean %v", w, res.Scores[i], trueMean)
		}
	}
}

func TestPhase1DominatesRuntime(t *testing.T) {
	// Table 8: ≥80% of execution is Phase 1 at paper scale. At our scale
	// the share is looser but Phase 1 must still dominate.
	src := testSource(t, 12000, 23)
	udf := vision.CountUDF{Class: video.ClassCar}
	res, err := Run(src, udf, smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Clock.PhaseMS(simclock.PhaseLabelSamples) +
		res.Clock.PhaseMS(simclock.PhaseTrainCMDN) +
		res.Clock.PhaseMS(simclock.PhasePopulateD0)
	if share := p1 / res.Clock.TotalMS(); share < 0.5 {
		t.Fatalf("phase 1 share %.2f; clock:\n%s", share, res.Clock)
	}
}

func TestDeterministicResults(t *testing.T) {
	udf := vision.CountUDF{Class: video.ClassCar}
	r1, err := Run(testSource(t, 8000, 29), udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testSource(t, 8000, 29), udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Confidence != r2.Confidence || r1.Clock.TotalMS() != r2.Clock.TotalMS() {
		t.Fatal("runs with identical seeds diverged")
	}
	for i := range r1.IDs {
		if r1.IDs[i] != r2.IDs[i] {
			t.Fatal("result IDs diverged")
		}
	}
}

func TestThresholdOneGivesExactRetainedTopK(t *testing.T) {
	src := testSource(t, 6000, 31)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Threshold = 1.0
	res, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 1 {
		t.Fatalf("confidence %v < 1", res.Confidence)
	}
	// With thres=1 the result is the exact Top-K over retained frames: no
	// retained frame outside the result may have a higher true count than
	// the K-th returned score.
	kth := int(res.Scores[len(res.Scores)-1])
	inResult := make(map[int]bool)
	for _, id := range res.IDs {
		inResult[id] = true
	}
	// Reconstruct the retained set the same way Phase 1 does.
	for _, id := range res.IDs {
		_ = id
	}
	for i := 0; i < src.NumFrames(); i++ {
		if inResult[i] {
			continue
		}
		// Only retained frames are candidates; discarded frames are
		// represented by retained ones, so checking all frames would
		// over-count. We conservatively check every frame against kth+1:
		// a violation by more than the diff detector's merge slack means
		// a real bug.
		if src.TrueCountFast(i) > kth+2 {
			t.Fatalf("frame %d has count %d >> returned threshold %d", i, src.TrueCountFast(i), kth)
		}
	}
}

func TestDisableDiffAblation(t *testing.T) {
	src := testSource(t, 5000, 37)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.DisableDiff = true
	res, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase1.Retained != 5000 {
		t.Fatalf("DisableDiff retained %d, want all 5000", res.Phase1.Retained)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
}

func TestTailgateQuery(t *testing.T) {
	spec, err := video.DatasetByName("Dashcam-California")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(8000)
	if err != nil {
		t.Fatal(err)
	}
	udf := vision.TailgateUDF{}
	res, err := Run(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	// Returned frames should be genuinely dangerous (small gaps).
	for _, id := range res.IDs {
		if src.LeadGap(id) > 15 {
			t.Fatalf("frame %d has gap %.1fm — not a tailgating moment", id, src.LeadGap(id))
		}
	}
}
