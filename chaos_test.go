package everest

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/faultinject"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// The chaos suite drives the full serving pipeline — session, coalescing
// scheduler, oracle mux, shared label cache — through the fault paths
// DESIGN.md's "Failure semantics" section promises: injected transient
// errors retry and converge bit-identically, injected panics surface as
// typed *OracleError values, an oracle that stays down degrades (or
// fails) without leaking admission slots or goroutines, and cancellation
// never poisons siblings. Everything here runs under `make chaos` with
// the race detector.

func chaosFixture(t *testing.T) (*Index, *video.Synthetic, vision.UDF) {
	t.Helper()
	src := testSource(t, 2000, 21)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	return ix, src, udf
}

// chaosSession wraps the fixture UDF with a fault schedule and opens a
// private session over it.
func chaosSession(t *testing.T, ix *Index, src *video.Synthetic, udf vision.UDF, schedule string) (*Session, *faultinject.UDF) {
	t.Helper()
	chaotic := faultinject.WrapUDF(udf, faultinject.MustParse(schedule), 1)
	s, err := NewSession(ix, src, chaotic)
	if err != nil {
		t.Fatal(err)
	}
	return s, chaotic
}

// TestChaosFaultFreeWrapperBitIdentical is the golden-determinism leg
// of the fault layer: with the chaos wrapper installed but an empty
// schedule, every query — plain, coalesced, muxed, at Procs 1/2/8 — is
// byte-identical (results AND simulated charges) to the unwrapped
// pipeline. The fault layer costs nothing when no fault fires.
func TestChaosFaultFreeWrapperBitIdentical(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	for _, procs := range []int{1, 2, 8} {
		for _, mode := range []struct {
			name     string
			coalesce bool
			mux      bool
		}{{"plain", false, false}, {"coalesce+mux", true, true}} {
			cfg := smallCfg(5)
			cfg.Procs = procs
			cfg.Coalesce = mode.coalesce
			cfg.UseMux = mode.mux

			clean, err := NewSession(ix, src, udf)
			if err != nil {
				t.Fatal(err)
			}
			want, err := clean.Query(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wrapped, inj := chaosSession(t, ix, src, udf, "")
			got, err := wrapped.Query(cfg)
			if err != nil {
				t.Fatalf("procs=%d %s: %v", procs, mode.name, err)
			}
			if !reflect.DeepEqual(goldenOf(got), goldenOf(want)) {
				t.Fatalf("procs=%d %s: empty fault schedule perturbed the query:\n%+v\nvs\n%+v",
					procs, mode.name, goldenOf(got), goldenOf(want))
			}
			if got.Retries != 0 || got.RetryBackoffMS != 0 || got.Degraded != nil {
				t.Fatalf("procs=%d %s: fault-free query reported fault activity: %+v", procs, mode.name, got)
			}
			if st := inj.Stats(); st.Transients+st.Panics+st.Slow != 0 {
				t.Fatalf("empty schedule injected faults: %+v", st)
			}
		}
	}
}

// TestChaosRetryConvergence locks the retry contract end to end: a
// schedule that fails the first three oracle dispatches transiently is
// invisible once exhausted — same IDs, scores, confidence and engine
// counters as the fault-free run — and costs exactly the capped
// exponential backoff (100+200+400 simulated ms), charged on the clock
// under the retry-backoff phase. Procs and the mux/coalesce path never
// change convergence.
func TestChaosRetryConvergence(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	clean, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Query(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name  string
		procs int
		mux   bool
	}{{"plain/procs=1", 1, false}, {"coalesce+mux/procs=8", 8, true}} {
		cfg := smallCfg(5)
		cfg.Procs = mode.procs
		cfg.Coalesce = mode.mux
		cfg.UseMux = mode.mux
		cfg.Retries = 5

		s, inj := chaosSession(t, ix, src, udf, "err:3")
		got, err := s.Query(cfg)
		if err != nil {
			t.Fatalf("%s: transient faults within the retry budget must converge: %v", mode.name, err)
		}
		if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) ||
			got.Confidence != want.Confidence || !reflect.DeepEqual(got.EngineStats, want.EngineStats) {
			t.Fatalf("%s: converged result differs from fault-free run", mode.name)
		}
		if got.Retries != 3 {
			t.Fatalf("%s: %d retries recorded, want 3", mode.name, got.Retries)
		}
		if got.RetryBackoffMS != 700 {
			t.Fatalf("%s: backoff %v simulated ms, want 100+200+400=700", mode.name, got.RetryBackoffMS)
		}
		if ms := got.Clock.PhaseMS(simclock.PhaseRetryBackoff); ms != 700 {
			t.Fatalf("%s: clock charged %v retry-backoff ms, want 700", mode.name, ms)
		}
		// Backoff is the ONLY cost the faults added (tolerance only for
		// summation order; the per-phase charges above are exact).
		if diff := got.Clock.TotalMS() - want.Clock.TotalMS(); math.Abs(diff-700) > 1e-6 {
			t.Fatalf("%s: faults added %v ms beyond the fault-free run, want exactly the 700 backoff",
				mode.name, diff)
		}
		if st := inj.Stats(); st.Transients != 3 {
			t.Fatalf("%s: injector fired %d transients, want 3", mode.name, st.Transients)
		}
	}
}

// TestChaosPanicIsTypedOracleError is the crash-isolation contract: a
// UDF that panics mid-dispatch fails its query with a typed
// *OracleError carrying the recovered value — never a process crash,
// and never a retry (panics are not transient).
func TestChaosPanicIsTypedOracleError(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	for _, mux := range []bool{false, true} {
		cfg := smallCfg(5)
		cfg.UseMux = mux
		cfg.Retries = 5 // must NOT be consumed by a panic
		s, _ := chaosSession(t, ix, src, udf, "panic:1")
		res, err := s.Query(cfg)
		if err == nil {
			t.Fatalf("mux=%v: panicking oracle produced a result: %+v", mux, res)
		}
		var oe *OracleError
		if !errors.As(err, &oe) {
			t.Fatalf("mux=%v: error %v (%T) is not a typed *OracleError", mux, err, err)
		}
		if oe.Panic == nil {
			t.Fatalf("mux=%v: OracleError lost the recovered panic value: %+v", mux, oe)
		}
		if _, ok := oe.Panic.(faultinject.PanicValue); !ok {
			t.Fatalf("mux=%v: recovered panic value %v (%T) is not the injected one", mux, oe.Panic, oe.Panic)
		}
	}
}

// TestChaosOracleDownDegrades drives the oracle fully down (every
// dispatch fails) and locks graceful degradation: with DegradedOK the
// query returns a proxy-only answer marked Degraded{Reason:"oracle"}
// with every entry unconfirmed, the retry budget is spent and charged
// exactly (100+200 simulated ms for Retries=2), and — the cache-safety
// half of the contract — not one unconfirmed estimate is published to
// the session's label cache. Without DegradedOK the same fault surfaces
// as a wrapped *OracleError.
func TestChaosOracleDownDegrades(t *testing.T) {
	ix, src, udf := chaosFixture(t)

	cfg := smallCfg(5)
	cfg.Retries = 2
	cfg.DegradedOK = true
	s, _ := chaosSession(t, ix, src, udf, "err:100000")
	res, err := s.Query(cfg)
	if err != nil {
		t.Fatalf("DegradedOK query must not fail on an oracle outage: %v", err)
	}
	if res.Degraded == nil || res.Degraded.Reason != "oracle" {
		t.Fatalf("result not marked degraded by the outage: %+v", res.Degraded)
	}
	if len(res.IDs) != 5 {
		t.Fatalf("degraded answer has %d entries, want K=5", len(res.IDs))
	}
	// The outage confirms nothing new, so every unconfirmed entry is a
	// proxy estimate — but entries Phase 1's labeled samples already made
	// certain stay confirmed, so Unconfirmed is a non-empty subset of IDs.
	if len(res.Degraded.Unconfirmed) == 0 {
		t.Fatal("outage-degraded answer marks no entry unconfirmed")
	}
	inAnswer := make(map[int]bool, len(res.IDs))
	for _, id := range res.IDs {
		inAnswer[id] = true
	}
	for _, id := range res.Degraded.Unconfirmed {
		if !inAnswer[id] {
			t.Fatalf("unconfirmed ID %d is not in the answer %v", id, res.IDs)
		}
	}
	if res.Retries != 2 || res.RetryBackoffMS != 300 {
		t.Fatalf("retry budget: %d retries / %v backoff ms, want 2 / 100+200=300",
			res.Retries, res.RetryBackoffMS)
	}
	if ms := res.Clock.PhaseMS(simclock.PhaseRetryBackoff); ms != 300 {
		t.Fatalf("clock charged %v retry-backoff ms, want 300", ms)
	}
	if res.Degraded.SpentMS != res.Clock.TotalMS() {
		t.Fatalf("degradation marker records %v spent ms, clock says %v",
			res.Degraded.SpentMS, res.Clock.TotalMS())
	}
	if n := s.CachedLabels(); n != 0 {
		t.Fatalf("degraded query published %d labels; unconfirmed estimates must never reach the cache", n)
	}

	// Same outage without the opt-in: a typed failure, not a guess.
	cfg.DegradedOK = false
	s2, _ := chaosSession(t, ix, src, udf, "err:100000")
	if _, err := s2.Query(cfg); err == nil {
		t.Fatal("oracle outage without DegradedOK must fail")
	} else {
		var oe *OracleError
		if !errors.As(err, &oe) {
			t.Fatalf("outage error %v (%T) is not a typed *OracleError", err, err)
		}
	}
}

// TestChaosDeadline locks the deadline semantics on the simulated
// clock: a query whose simulated budget expires returns a degraded
// answer marked Reason:"deadline" when DegradedOK is set (cost
// accounting intact: the marker's SpentMS is the clock's total), and a
// wrapped ErrDeadline otherwise. No chaos schedule needed — deadlines
// are a property of the cost model, not of faults.
func TestChaosDeadline(t *testing.T) {
	ix, src, udf := chaosFixture(t)

	cfg := smallCfg(5)
	cfg.DeadlineMS = 1 // expires on the first budget check
	cfg.DegradedOK = true
	s, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	res, qerr := s.Query(cfg)
	if qerr != nil {
		t.Fatalf("DegradedOK deadline query must not fail: %v", qerr)
	}
	if res.Degraded == nil || res.Degraded.Reason != "deadline" {
		t.Fatalf("result not marked deadline-degraded: %+v", res.Degraded)
	}
	if res.Degraded.SpentMS != res.Clock.TotalMS() {
		t.Fatalf("degradation marker records %v spent ms, clock says %v",
			res.Degraded.SpentMS, res.Clock.TotalMS())
	}
	if len(res.IDs) != 5 {
		t.Fatalf("degraded answer has %d entries, want K=5", len(res.IDs))
	}

	cfg.DegradedOK = false
	if _, err := s.Query(cfg); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired deadline without DegradedOK returned %v, want ErrDeadline", err)
	}

	// A deadline generous enough for the whole query changes nothing:
	// same bytes as the unbounded run.
	want, err := s.Query(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	roomy := smallCfg(5)
	roomy.DeadlineMS = 1e12
	got, err := s.Query(roomy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) ||
		got.Degraded != nil {
		t.Fatal("an unexpired deadline perturbed the query")
	}
}

// TestChaosAdmissionGateNeverLeaks is the slot-leak audit: one hundred
// queries that all fail — panics, transient exhaustion, pre-cancelled
// contexts, across the plain, coalesced and muxed paths — against a
// tight admission gate. Every release path must fire: the gate returns
// to zero in-flight, no goroutines are left behind, and the session
// still serves a clean query afterwards.
func TestChaosAdmissionGateNeverLeaks(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	s, _ := chaosSession(t, ix, src, udf, "err:100000")

	// Warm the resident machinery (mux dispatcher, pools) before counting
	// goroutines, so the settle check below measures leaks, not lazies.
	warm := smallCfg(5)
	warm.UseMux = true
	if _, err := s.Query(warm); err == nil {
		t.Fatal("warmup query against a dead oracle should fail")
	}
	baseline := runtime.NumGoroutine()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 100
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		cfg := smallCfg(5)
		cfg.AdmissionLimit = 3
		cfg.Retries = i % 2 // exercise both fail-fast and retry-then-fail
		ctx := context.Background()
		switch i % 4 {
		case 1:
			cfg.Coalesce = true
		case 2:
			cfg.UseMux = true
		case 3:
			ctx = cancelled // cancelled before admission
		}
		wg.Add(1)
		go func(i int, ctx context.Context, cfg Config) {
			defer wg.Done()
			_, errs[i] = s.QueryCtx(ctx, cfg)
		}(i, ctx, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("faulted query %d succeeded against a dead oracle", i)
		}
		if i%4 == 3 && !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled query %d returned %v, want context.Canceled", i, err)
		}
	}
	if in := s.cache.InFlight(); in != 0 {
		t.Fatalf("admission gate leaked: %d units still in flight after %d failed queries", in, n)
	}
	// Goroutines settle back to the warm baseline (small slack for
	// runtime bookkeeping).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d after warmup", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The gate still admits: a clean session over the same cache serves.
	clean, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.AdmissionLimit = 3
	if _, err := clean.Query(cfg); err != nil {
		t.Fatalf("gate unusable after the chaos run: %v", err)
	}
}

// TestChaosConcurrentCancellationRace is the race-gate scenario: many
// coalesced+muxed queries in flight over one shared cache while half
// their contexts are cancelled mid-run. No deadlock, no slot leak, and
// every survivor's answer is bit-identical to the serial baseline —
// cancellation removes queries, never perturbs them.
func TestChaosConcurrentCancellationRace(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	baselineSession, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baselineSession.Query(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	results := make([]*Result, n)
	errs := make([]error, n)
	cancels := make([]context.CancelFunc, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		cfg := smallCfg(5)
		cfg.Procs = 1 + i%2
		cfg.Coalesce = true
		cfg.UseMux = true
		wg.Add(1)
		go func(i int, ctx context.Context, cfg Config) {
			defer wg.Done()
			results[i], errs[i] = s.QueryCtx(ctx, cfg)
		}(i, ctx, cfg)
	}
	// Cancel every odd query at an arbitrary point in its run; the even
	// half must be untouched.
	for i := 1; i < n; i += 2 {
		cancels[i]()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		switch {
		case errs[i] == nil:
			if !reflect.DeepEqual(results[i].IDs, want.IDs) || !reflect.DeepEqual(results[i].Scores, want.Scores) {
				t.Fatalf("query %d survived cancellation chaos with a different answer", i)
			}
		case i%2 == 1 && errors.Is(errs[i], context.Canceled):
			// Cancelled in time — fine.
		default:
			t.Fatalf("query %d failed unexpectedly: %v", i, errs[i])
		}
	}
	for i := 0; i < n; i += 2 {
		if errs[i] != nil {
			t.Fatalf("never-cancelled query %d failed: %v", i, errs[i])
		}
	}
	if in := s.cache.InFlight(); in != 0 {
		t.Fatalf("cancellation chaos leaked %d admission units", in)
	}
	for _, cancel := range cancels {
		cancel()
	}
}

// TestChaosBatchSiblingIsolation checks member isolation on the batch
// paths: in a QueryBatch where one member's oracle schedule panics,
// only that member's slot fails (with the typed error), the siblings'
// results are intact, and the confirmed labels the batch paid for are
// published. A separate pre-cancelled batch returns ctx.Err() without
// wedging the session.
func TestChaosBatchSiblingIsolation(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	// Schedule: exactly one panic somewhere in the batch's dispatch
	// stream; every other call is clean.
	s, _ := chaosSession(t, ix, src, udf, "panic:1")
	cfgs := []Config{smallCfg(5), smallCfg(3), smallCfg(8)}
	results, err := s.QueryBatch(cfgs)
	if err == nil {
		t.Fatal("batch with a panicking member must surface its error")
	}
	var oe *OracleError
	if !errors.As(err, &oe) {
		t.Fatalf("batch error %v (%T) is not a typed *OracleError", err, err)
	}
	failed, ok := 0, 0
	for i, res := range results {
		if res == nil {
			failed++
			continue
		}
		ok++
		if len(res.IDs) != cfgs[i].K {
			t.Fatalf("surviving member %d answered %d entries, want %d", i, len(res.IDs), cfgs[i].K)
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("want a mix of failed and surviving members, got %d failed / %d ok", failed, ok)
	}
	if s.CachedLabels() == 0 {
		t.Fatal("surviving members' confirmed labels were not published")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryBatchCtx(ctx, cfgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch returned %v, want context.Canceled", err)
	}
	if _, err := s.Query(smallCfg(5)); err != nil {
		t.Fatalf("session wedged after batch chaos: %v", err)
	}
}

// TestChaosSlowFaultsChargeOnly locks the latency-spike kind: slow
// faults never change results, only the simulated bill (charged to the
// injector's stats; the serving CLI wires them to the query clock).
func TestChaosSlowFaultsChargeOnly(t *testing.T) {
	ix, src, udf := chaosFixture(t)
	clean, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Query(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	s, inj := chaosSession(t, ix, src, udf, "slow:100000:40")
	got, err := s.Query(smallCfg(5))
	if err != nil {
		t.Fatalf("slow faults must not fail a query: %v", err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) ||
		got.Retries != 0 || got.Degraded != nil {
		t.Fatal("latency spikes perturbed the result")
	}
	st := inj.Stats()
	if st.Slow == 0 || st.SpikeMS != float64(st.Slow)*40 {
		t.Fatalf("spike accounting off: %+v", st)
	}
}
