// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding harness experiment at a reduced scale and reports the
// headline numbers as custom metrics:
//
//	go test -bench=Fig4 -benchmem
//	go test -bench=. -benchmem            # everything
//
// cmd/experiments runs the same experiments at full scale with full
// tabular output.
package everest_test

import (
	"sync"
	"testing"
	"time"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/harness"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/oraclemux"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// benchScale keeps each figure's benchmark in the seconds range on one
// CPU core; cmd/experiments uses the full default scale.
func benchScale() harness.Scale {
	return harness.Scale{Frames: 4000, Seed: 1}
}

func reportQuality(b *testing.B, prec, speedup float64) {
	b.ReportMetric(prec, "precision")
	b.ReportMetric(speedup, "speedup")
}

func BenchmarkFig4Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig4(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var prec, speed float64
		n := 0
		for _, r := range rows {
			if r.System == "everest" {
				prec += r.Quality.Precision
				speed += r.Speedup
				n++
			}
		}
		reportQuality(b, prec/float64(n), speed/float64(n))
	}
}

func BenchmarkTable8Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table8(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var cleaned, p1 float64
		for _, r := range rows {
			cleaned += r.CleanedFrac
			p1 += r.LabelShare + r.TrainShare + r.PopulateShare
		}
		b.ReportMetric(100*cleaned/float64(len(rows)), "%frames-cleaned")
		b.ReportMetric(100*p1/float64(len(rows)), "%phase1-share")
	}
}

func BenchmarkFig5K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig5(benchScale(), 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var prec, speed float64
		for _, r := range rows {
			prec += r.Quality.Precision
			speed += r.Speedup
		}
		reportQuality(b, prec/float64(len(rows)), speed/float64(len(rows)))
	}
}

func BenchmarkFig6Thres(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(benchScale(), 10)
		if err != nil {
			b.Fatal(err)
		}
		var prec, speed float64
		for _, r := range rows {
			prec += r.Quality.Precision
			speed += r.Speedup
		}
		reportQuality(b, prec/float64(len(rows)), speed/float64(len(rows)))
	}
}

func BenchmarkFig7Windows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var prec, speed float64
		for _, r := range rows {
			prec += r.Quality.Precision
			speed += r.Speedup
		}
		reportQuality(b, prec/float64(len(rows)), speed/float64(len(rows)))
	}
}

func BenchmarkFig8VisualRoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig8(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var prec, speed float64
		for _, r := range rows {
			prec += r.Quality.Precision
			speed += r.Speedup
		}
		reportQuality(b, prec/float64(len(rows)), speed/float64(len(rows)))
	}
}

func BenchmarkFig9Depth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var prec, speed float64
		for _, r := range rows {
			prec += r.Quality.Precision
			speed += r.Speedup
		}
		reportQuality(b, prec/float64(len(rows)), speed/float64(len(rows)))
	}
}

func BenchmarkAblationEarlyStop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationEarlyStop(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MS, "pruned-ms")
		b.ReportMetric(rows[1].MS, "exhaustive-ms")
	}
}

func BenchmarkAblationResort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationResort(benchScale(), 10, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationBatch(benchScale(), 10, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationDiff(benchScale(), 10, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationPrefetch(benchScale(), 10, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationSemantics(benchScale(), 10, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleoutScalability regenerates the RAM3S-style scale-out
// sweep (E1): wall-clock latency vs worker count.
func BenchmarkScaleoutScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ScaleoutScalability(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		base, best := rows[0].WallMS, rows[0].WallMS
		for _, r := range rows {
			if r.WallMS < best {
				best = r.WallMS
			}
		}
		b.ReportMetric(base/best, "parallel-speedup")
		b.ReportMetric(rows[len(rows)-1].Quality.Precision, "precision")
	}
}

// BenchmarkSessionReuse regenerates the cross-query work-sharing study
// (E2): the marginal cost of a repeated query inside a session.
func BenchmarkSessionReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.SessionAmortization(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var sessionMS, aloneMS float64
		for _, r := range rows {
			sessionMS += r.SessionMS
			aloneMS += r.AloneMS
		}
		if sessionMS > 0 {
			b.ReportMetric(aloneMS/sessionMS, "work-sharing-gain")
		}
		b.ReportMetric(float64(rows[len(rows)-1].CacheSize), "cached-labels")
	}
}

// BenchmarkSessionConcurrent measures the steady-state concurrent-serving
// scenario: 8 identical queries answered at once from one long-lived
// session over a prebuilt index, with a label cache already warmed by
// earlier traffic (window queries sampling across the video plus strict
// frame queries). Phase 1 and the warm-up run once outside the timer, so
// each timed iteration is the marginal cost of serving one 8-caller
// batch entirely from cache: snapshot the label store, rebuild D0 with
// the cached labels certain, and run Phase 2 to its confident stop —
// the per-request hot path of the millions-of-users scenario.
func BenchmarkSessionConcurrent(b *testing.B) {
	const callers = 8
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.Build(4000)
	if err != nil {
		b.Fatal(err)
	}
	udf := vision.CountUDF{Class: src.TargetClass()}
	cfg := everest.Config{
		K: 10, Threshold: 0.9, Seed: 1,
		Proxy: cmdn.Config{Grid: []cmdn.Hyper{
			{G: 5, H: 20}, {G: 5, H: 30}, {G: 8, H: 30}, {G: 12, H: 40},
		}},
	}
	ix, err := everest.BuildIndex(src, udf, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := everest.NewSession(ix, src, udf)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache the way mixed earlier traffic would: window queries
	// confirm by sampling frames all over the video, strict thresholds
	// clean deep past the default stop.
	warm := cfg
	warm.Threshold = 0.9999
	warm.K = 50
	warmups := []everest.Config{warm}
	for _, w := range []int{20, 25, 30, 35, 40, 50} {
		wc := cfg
		wc.Window = w
		wc.Threshold = 0.999
		warmups = append(warmups, wc)
	}
	for _, w := range warmups {
		if _, err := sess.Query(w); err != nil {
			b.Fatal(err)
		}
	}
	// One untimed run of the serving batch itself, so every timed
	// iteration is oracle-free and identical.
	if _, err := sess.RunConcurrent(cfg, callers); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sess.RunConcurrent(cfg, callers)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(callers), "concurrent-queries")
			b.ReportMetric(results[0].Confidence, "confidence")
			b.ReportMetric(float64(sess.CachedLabels()), "cached-labels")
		}
	}
}

// BenchmarkSessionSharedCache measures cross-session label reuse: 6
// separate user sessions over the same (video, UDF) pair each issue the
// same query, once through the process-wide shared cache
// (NewSharedSession) and once as fully independent sessions. With the
// shared cache only the first session pays the oracle; the metrics
// report the total oracle bill of each mode, and the headline ns/op is
// the shared-mode serving cost.
func BenchmarkSessionSharedCache(b *testing.B) {
	const sessions = 6
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.Build(4000)
	if err != nil {
		b.Fatal(err)
	}
	udf := vision.CountUDF{Class: src.TargetClass()}
	cfg := everest.Config{
		K: 10, Threshold: 0.9, Seed: 1,
		Proxy: cmdn.Config{Grid: []cmdn.Hyper{
			{G: 5, H: 20}, {G: 5, H: 30}, {G: 8, H: 30}, {G: 12, H: 40},
		}},
	}
	ix, err := everest.BuildIndex(src, udf, cfg)
	if err != nil {
		b.Fatal(err)
	}
	runAll := func(newSession func() (*everest.Session, error)) (oracleCalls, cleaned int) {
		for s := 0; s < sessions; s++ {
			sess, err := newSession()
			if err != nil {
				b.Fatal(err)
			}
			res, err := sess.Query(cfg)
			if err != nil {
				b.Fatal(err)
			}
			oracleCalls += res.EngineStats.OracleCalls
			cleaned += res.EngineStats.Cleaned
		}
		return oracleCalls, cleaned
	}
	b.ResetTimer()
	var sharedCalls, sharedCleaned, aloneCalls int
	for i := 0; i < b.N; i++ {
		labelstore.ResetForTest() // every iteration starts cache-cold
		sharedCalls, sharedCleaned = runAll(func() (*everest.Session, error) {
			return everest.NewSharedSession(ix, src, udf)
		})
	}
	b.StopTimer()
	aloneCalls, _ = runAll(func() (*everest.Session, error) {
		return everest.NewSession(ix, src, udf)
	})
	b.ReportMetric(float64(sharedCalls), "oracle-calls-shared")
	b.ReportMetric(float64(aloneCalls), "oracle-calls-independent")
	b.ReportMetric(float64(sharedCleaned), "cleaned-shared")
	if sharedCalls >= aloneCalls {
		b.Fatalf("shared sessions issued %d oracle calls, independent %d — cross-session reuse failed",
			sharedCalls, aloneCalls)
	}
}

// BenchmarkSessionCoalesced measures the cross-query coalescing
// scheduler: 6 compatible queries (different K and thres over one
// indexed video) served as one coalesced group against N fully
// independent runs of the same queries. The group pays one Phase 1 pass
// (the prebuilt index, amortized outside the timer, where independent
// everest.Run calls would each pay their own) and — because the group
// shares a single label overlay — strictly fewer oracle confirmations
// and calls than the independent runs. Each timed iteration serves the
// whole group from a cold cache: the timed path is plan compilation,
// relation builds over the shared overlay and the merged Phase 2 loops.
func BenchmarkSessionCoalesced(b *testing.B) {
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		b.Fatal(err)
	}
	src, err := spec.Build(4000)
	if err != nil {
		b.Fatal(err)
	}
	udf := vision.CountUDF{Class: src.TargetClass()}
	base := everest.Config{
		K: 10, Threshold: 0.9, Seed: 1,
		Proxy: cmdn.Config{Grid: []cmdn.Hyper{
			{G: 5, H: 20}, {G: 5, H: 30}, {G: 8, H: 30}, {G: 12, H: 40},
		}},
	}
	mkCfgs := func(coalesce bool) []everest.Config {
		ks := []int{10, 5, 3, 20, 8, 10}
		ths := []float64{0.9, 0.9, 0.99, 0.9, 0.95, 0.99}
		cfgs := make([]everest.Config, len(ks))
		for i := range ks {
			cfgs[i] = base
			cfgs[i].K = ks[i]
			cfgs[i].Threshold = ths[i]
			cfgs[i].Coalesce = coalesce
		}
		return cfgs
	}
	ix, err := everest.BuildIndex(src, udf, base)
	if err != nil {
		b.Fatal(err)
	}
	// Independent baseline, outside the timer: every query pays its own
	// oracle bill from a cold cache.
	var indepCleaned, indepCalls int
	for _, cfg := range mkCfgs(false) {
		res, err := ix.Query(src, udf, cfg)
		if err != nil {
			b.Fatal(err)
		}
		indepCleaned += res.EngineStats.Cleaned
		indepCalls += res.EngineStats.OracleCalls
	}
	b.ResetTimer()
	var coalCleaned, coalCalls int
	for i := 0; i < b.N; i++ {
		sess, err := everest.NewSession(ix, src, udf) // cold cache per iteration
		if err != nil {
			b.Fatal(err)
		}
		results, err := sess.QueryBatch(mkCfgs(true))
		if err != nil {
			b.Fatal(err)
		}
		coalCleaned, coalCalls = 0, 0
		for _, res := range results {
			coalCleaned += res.EngineStats.Cleaned
			coalCalls += res.EngineStats.OracleCalls
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(coalCleaned), "cleaned-coalesced")
	b.ReportMetric(float64(indepCleaned), "cleaned-independent")
	b.ReportMetric(float64(coalCalls), "oracle-calls-coalesced")
	b.ReportMetric(float64(indepCalls), "oracle-calls-independent")
	if coalCalls >= indepCalls || coalCleaned >= indepCleaned {
		b.Fatalf("coalesced group paid %d calls / %d cleaned, independent runs %d / %d — coalescing saved nothing",
			coalCalls, coalCleaned, indepCalls, indepCleaned)
	}
}

// latencyUDF delegates scoring to its inner UDF after a real wall-clock
// pause per invocation — the host-visible latency of one device launch.
// The pause is what gives concurrent queries something to overlap with:
// while one launch is in flight the other in-flight runs reach their
// own confirmation calls and queue on the mux, exactly as they would
// against a real GPU-resident oracle (synthetic scoring alone completes
// in microseconds, so on a small machine no queue would ever form).
// Scores are bit-identical to the inner UDF's.
type latencyUDF struct {
	vision.UDF
	launch time.Duration
}

func (u latencyUDF) Score(src video.Source, ids []int) []float64 {
	time.Sleep(u.launch)
	return u.UDF.Score(src, ids)
}

// BenchmarkOracleMux measures the process-wide oracle multiplexer in
// the M×N cross-video serving scenario: 3 indexed videos × 4 queries
// each, all in flight together with UseMux, funnel every Phase 2
// confirmation batch through one GPU-style dispatch queue (whose
// launches carry a simulated 200µs host latency — see latencyUDF).
// Without the mux each plan-level batch is its own device launch, so
// the request count IS the independent launch count; the metrics
// report how many consolidated launches the same traffic actually
// dispatched and the simulated launch overhead that saved. Results and
// per-query charges are bit-identical either way
// (TestOracleMuxCrossVideoBitIdentical, TestGoldenOracleMux); this
// benchmark prices the device side.
func BenchmarkOracleMux(b *testing.B) {
	type target struct {
		src *video.Synthetic
		ix  *everest.Index
	}
	base := everest.Config{
		K: 10, Threshold: 0.9, Seed: 1,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 30},
		SampleFrac: 0.05,
	}
	// Indexes are built with the raw UDF (no launch latency in Phase 1
	// setup); the served queries score through the latency wrapper.
	udf := latencyUDF{UDF: vision.CountUDF{Class: video.ClassCar}, launch: 200 * time.Microsecond}
	var targets []target
	for _, seed := range []uint64{61, 62, 63} {
		src, err := video.NewSynthetic(video.Config{
			Name: "mux-bench", Kind: video.KindTraffic, Class: video.ClassCar,
			Frames: 3000, FPS: 30, Seed: seed, MeanPopulation: 3, BurstRate: 3,
			DailyCycle: true, DistractorPopulation: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ix, err := everest.BuildIndex(src, udf.UDF, base)
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, target{src: src, ix: ix})
	}
	mkCfgs := func() []everest.Config {
		ks := []int{10, 5, 3, 8}
		ths := []float64{0.9, 0.99, 0.9, 0.95}
		cfgs := make([]everest.Config, len(ks))
		for i := range ks {
			cfgs[i] = base
			cfgs[i].K = ks[i]
			cfgs[i].Threshold = ths[i]
			cfgs[i].UseMux = true
		}
		return cfgs
	}

	b.ResetTimer()
	var requests, launches, frames int
	var savedMS float64
	for i := 0; i < b.N; i++ {
		before := oraclemux.Shared().Stats()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for _, tg := range targets {
			for _, cfg := range mkCfgs() {
				wg.Add(1)
				go func(tg target, cfg everest.Config) {
					defer wg.Done()
					if _, err := tg.ix.Query(tg.src, udf, cfg); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}(tg, cfg)
			}
		}
		wg.Wait()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
		after := oraclemux.Shared().Stats()
		requests += after.Requests - before.Requests
		launches += after.Launches - before.Launches
		frames += after.Frames - before.Frames
		savedMS += after.SavedMS - before.SavedMS
	}
	b.StopTimer()
	perIter := float64(b.N)
	b.ReportMetric(float64(requests)/perIter, "dispatches-independent")
	b.ReportMetric(float64(launches)/perIter, "launches-consolidated")
	b.ReportMetric(float64(requests)/float64(launches), "consolidation-x")
	b.ReportMetric(float64(frames)/perIter, "oracle-frames")
	b.ReportMetric(savedMS/perIter, "saved-launch-ms")
	if launches >= requests {
		b.Fatalf("mux dispatched %d launches for %d requests — consolidation saved nothing", launches, requests)
	}
}

// BenchmarkSlidingWindows regenerates the sliding-vs-tumbling comparison
// (E3): the cleaning price of the dependence-safe union bound.
func BenchmarkSlidingWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.SlidingWindows(benchScale(), 5, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var prec float64
		for _, r := range rows {
			prec += r.Quality.Precision
		}
		b.ReportMetric(prec/float64(len(rows)), "precision")
		b.ReportMetric(float64(rows[len(rows)-1].Cleaned), "cleaned-overlapping")
	}
}

// BenchmarkAblationBound regenerates ablation A7: exact product vs union
// bound on the same frame query.
func BenchmarkAblationBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationBound(benchScale(), 10, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MS, "exact-ms")
		b.ReportMetric(rows[1].MS, "union-ms")
	}
}
