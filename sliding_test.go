package everest

import (
	"testing"

	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func TestEndToEndSlidingWindowQuery(t *testing.T) {
	src := testSource(t, 9000, 91)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Window = 60
	cfg.Stride = 30
	res, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || res.WindowSize != 60 || res.WindowStride != 30 {
		t.Fatalf("window metadata wrong: %+v", res)
	}
	if res.Bound != core.BoundUnion {
		t.Fatalf("overlapping windows must use the union bound, got %v", res.Bound)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", res.Confidence)
	}
	nw := (9000-60)/30 + 1
	for _, w := range res.IDs {
		if w < 0 || w >= nw {
			t.Fatalf("window ID %d out of [0, %d)", w, nw)
		}
	}
}

func TestTumblingWindowKeepsExactBound(t *testing.T) {
	src := testSource(t, 9000, 93)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Window = 60
	res, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != core.BoundIndependent {
		t.Fatalf("tumbling windows should keep the exact bound, got %v", res.Bound)
	}
	if res.WindowStride != 60 {
		t.Fatalf("stride should default to the window size, got %d", res.WindowStride)
	}
}

func TestGappedWindowsKeepExactBound(t *testing.T) {
	// Stride > window: disjoint windows remain independent.
	src := testSource(t, 9000, 95)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Window = 30
	cfg.Stride = 90
	res, err := Run(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != core.BoundIndependent {
		t.Fatalf("gapped windows should keep the exact bound, got %v", res.Bound)
	}
}

func TestUnionBoundAblationOnFrames(t *testing.T) {
	// Forcing the union bound on an independent frame query must still
	// meet the guarantee, cleaning at least as much as the exact bound.
	src := testSource(t, 9000, 97)
	udf := vision.CountUDF{Class: video.ClassCar}
	exactCfg := smallCfg(5)
	exact, err := Run(src, udf, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	unionCfg := smallCfg(5)
	unionCfg.UnionBound = true
	union, err := Run(src, udf, unionCfg)
	if err != nil {
		t.Fatal(err)
	}
	if union.Bound != core.BoundUnion {
		t.Fatalf("union flag ignored: %v", union.Bound)
	}
	if union.Confidence < 0.9 {
		t.Fatalf("union confidence %v < 0.9", union.Confidence)
	}
	if union.EngineStats.Cleaned < exact.EngineStats.Cleaned {
		t.Fatalf("union bound cleaned %d < exact %d — conservative bound cannot be cheaper",
			union.EngineStats.Cleaned, exact.EngineStats.Cleaned)
	}
}

func TestStrideWithoutWindowRejected(t *testing.T) {
	src := testSource(t, 3000, 99)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	cfg.Stride = 30
	if _, err := Run(src, udf, cfg); err == nil {
		t.Fatal("stride without window must be rejected")
	}
}

func TestRunParallelEndToEnd(t *testing.T) {
	src := testSource(t, 9000, 101)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(10)
	res, err := RunParallel(src, udf, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 || len(res.Shards) != 3 {
		t.Fatalf("worker accounting wrong: %d workers, %d shards", res.Workers, len(res.Shards))
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", res.Confidence)
	}
	for i, id := range res.IDs {
		if int(res.Scores[i]) != src.TrueCountFast(id) {
			t.Fatalf("frame %d score %v, truth %d", id, res.Scores[i], src.TrueCountFast(id))
		}
	}
	// The BSP wall-clock must not exceed the total paid bill.
	if res.Clock.TotalMS() > res.WorkerSumMS+res.Clock.PhaseMS("phase2/confirm-by-oracle")+
		res.Clock.PhaseMS("phase2/select-candidate")+res.Clock.PhaseMS("phase2/topk-prob")+1e-9 {
		t.Fatalf("wall %v exceeds bill %v + phase2", res.Clock.TotalMS(), res.WorkerSumMS)
	}
}

func TestRunParallelInvalidWorkers(t *testing.T) {
	src := testSource(t, 3000, 103)
	udf := vision.CountUDF{Class: video.ClassCar}
	if _, err := RunParallel(src, udf, smallCfg(5), 0); err == nil {
		t.Fatal("zero workers must be rejected")
	}
}
