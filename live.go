package everest

import (
	"errors"

	"github.com/everest-project/everest/internal/stream"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// LiveConfig configures a live streaming run opened with OpenLive. The
// query itself (K, threshold, seed, cost model, …) comes from the usual
// Config; LiveConfig holds only the streaming knobs.
type LiveConfig struct {
	// SegmentFrames is the model-refresh granularity: every this many
	// ingested frames the open segment closes, its CMDN refreshes, and
	// the follower re-evaluates. Zero means 1800 (one minute at 30 fps).
	SegmentFrames int
	// Warm enables the incremental CMDN refresh at segment closes:
	// fine-tune the previous segment's model on the new samples, with an
	// automatic fallback to a full grid train when the score
	// distribution drifted. Off, every segment trains the full grid —
	// bit-identical to repeated batch Index.Extend calls at the same
	// boundaries.
	Warm bool
	// MaxLagChunks bounds the follower's staleness: when this many
	// chunks arrive without a new answer, the open segment closes early.
	// Zero means updates at the segment cadence only. A lag bound moves
	// segment boundaries, so the run is no longer bit-identical to
	// batch ingestion of the same footage.
	MaxLagChunks int
	// DriftNLL is the warm-refresh drift tolerance: warm-start only
	// while the previous model's mean NLL on the new segment's holdout
	// stays within this margin of its selection-time holdout NLL. Zero
	// means 0.5; raise it for feeds whose score distribution cycles
	// (the calibration reservoir keeps the guarantee honest), or set it
	// negative to force a full train at every close even with Warm on.
	DriftNLL float64
	// OnDelta, when set, is called synchronously with each answer delta.
	OnDelta func(LiveDelta)
}

// LiveDelta is one continuous top-K update: how the answer changed when
// the ingested footage advanced.
type LiveDelta struct {
	// Seq numbers the deltas from 0; Frontier is the frame count the
	// answer covers.
	Seq, Frontier int
	// Entered and Reordered list frames in new-rank order; Left in
	// former-rank order. All empty when footage arrived but the answer
	// stood.
	Entered, Left, Reordered []int
	// IDs and Scores snapshot the full oracle-confirmed answer;
	// Confidence is its probabilistic guarantee.
	IDs        []int
	Scores     []float64
	Confidence float64
	// QueryMS is this evaluation's simulated Phase 2 cost.
	QueryMS float64
}

// LiveStats counts what a live stream has done.
type LiveStats struct {
	// Chunks and Segments count Append calls and closed segments.
	Chunks, Segments int
	// WarmRefreshes, FullTrains and DriftFallbacks break down segment
	// closes: warm starts taken, full grid trains, and full trains
	// forced by the drift pre-check.
	WarmRefreshes, FullTrains, DriftFallbacks int
	// EagerLabels counts frames labelled chunk by chunk before their
	// segment closed; WastedLabels the subset a sealed-short segment's
	// re-plan did not reuse.
	EagerLabels, WastedLabels int
	// ForcedCloses counts segments closed early by the staleness bound;
	// Deltas counts answer updates delivered.
	ForcedCloses, Deltas int
}

// LiveStream is the public face of live ingestion: an append-only
// camera feed ingested chunk by chunk with one continuous top-K
// follower attached. Not safe for concurrent use; one goroutine owns
// it. See DESIGN.md "Streaming ingestion & incremental top-K".
type LiveStream struct {
	ing *stream.Ingestor
	fol *stream.Follower
}

// OpenLive starts live ingestion of src: the feed is modelled as a
// growing prefix of src, delivered by Append calls. The query compiled
// from cfg is kept continuously answered; deltas arrive via
// live.OnDelta and accumulate in Deltas.
func OpenLive(src video.Source, udf vision.UDF, cfg Config, live LiveConfig) (*LiveStream, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	mode := stream.RefreshFull
	if live.Warm {
		mode = stream.RefreshAuto
	}
	ing, err := stream.NewIngestor(src, udf, stream.Config{
		SegmentFrames: live.SegmentFrames,
		Refresh:       mode,
		DriftNLL:      live.DriftNLL,
		Ingest:        cfg.phase1Options(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	var onDelta func(stream.Delta)
	if live.OnDelta != nil {
		cb := live.OnDelta
		onDelta = func(d stream.Delta) { cb(liveDeltaOf(d)) }
	}
	fol, err := ing.Follow(stream.FollowConfig{
		Plan:         cfg.plan(),
		MaxLagChunks: live.MaxLagChunks,
		OnDelta:      onDelta,
	})
	if err != nil {
		ing.Close()
		return nil, err
	}
	return &LiveStream{ing: ing, fol: fol}, nil
}

func liveDeltaOf(d stream.Delta) LiveDelta {
	return LiveDelta{
		Seq:        d.Seq,
		Frontier:   d.Frontier,
		Entered:    d.Change.Entered,
		Left:       d.Change.Left,
		Reordered:  d.Change.Reordered,
		IDs:        d.IDs,
		Scores:     d.Scores,
		Confidence: d.Confidence,
		QueryMS:    d.QueryMS,
	}
}

// LiveFollower is an additional continuous query registered on a
// LiveStream with Follow: its own top-K plan kept answered as the one
// shared feed advances. Followers due at the same segment close
// evaluate as one coalesced scheduler group, sharing confirmations.
type LiveFollower struct {
	fol *stream.Follower
}

// Deltas returns every answer update the follower has received.
func (lf *LiveFollower) Deltas() []LiveDelta {
	ds := lf.fol.Deltas()
	out := make([]LiveDelta, len(ds))
	for i, d := range ds {
		out[i] = liveDeltaOf(d)
	}
	return out
}

// Answer is the follower's most recent full answer, or nil before its
// first evaluation.
func (lf *LiveFollower) Answer() *LiveDelta {
	ds := lf.fol.Deltas()
	if len(ds) == 0 {
		return nil
	}
	d := liveDeltaOf(ds[len(ds)-1])
	return &d
}

// Follow registers an additional continuous top-K query on the live
// stream — the `SELECT STREAM TOP K …` EQL statement compiles to
// exactly this registration. The new follower shares the stream's
// ingestor, artifact and label cache with the original query and every
// other follower; all followers due at a segment close evaluate as one
// coalesced group. Follow fails once the stream is sealed.
func (ls *LiveStream) Follow(cfg Config, maxLagChunks int, onDelta func(LiveDelta)) (*LiveFollower, error) {
	cfg = cfg.withDefaults()
	var cb func(stream.Delta)
	if onDelta != nil {
		cb = func(d stream.Delta) { onDelta(liveDeltaOf(d)) }
	}
	fol, err := ls.ing.Follow(stream.FollowConfig{
		Plan:         cfg.plan(),
		MaxLagChunks: maxLagChunks,
		OnDelta:      cb,
	})
	if err != nil {
		return nil, err
	}
	return &LiveFollower{fol: fol}, nil
}

// Append delivers the next chunk of the feed: frames more frames of the
// underlying source become visible, eagerly labelled, and any segments
// they complete close (refreshing the model and updating the answer).
func (ls *LiveStream) Append(frames int) error { return ls.ing.Append(frames) }

// Seal ends the feed: a partial open segment closes (re-planned for its
// actual span, reusing eager labels), and the follower is brought to
// the final frontier. No Append may follow.
func (ls *LiveStream) Seal() error { return ls.ing.Seal() }

// Close releases the stream's worker pool. The stream and its deltas
// stay readable.
func (ls *LiveStream) Close() { ls.ing.Close() }

// Frontier is how many frames of the feed have arrived.
func (ls *LiveStream) Frontier() int { return ls.ing.Frontier() }

// IngestMS is the total simulated Phase 1 cost charged so far.
func (ls *LiveStream) IngestMS() float64 { return ls.ing.IngestMS() }

// Deltas returns every answer update delivered so far, in order.
func (ls *LiveStream) Deltas() []LiveDelta {
	ds := ls.fol.Deltas()
	out := make([]LiveDelta, len(ds))
	for i, d := range ds {
		out[i] = liveDeltaOf(d)
	}
	return out
}

// Answer is the most recent full answer as a LiveDelta snapshot, or nil
// before the first evaluation.
func (ls *LiveStream) Answer() *LiveDelta {
	ds := ls.fol.Deltas()
	if len(ds) == 0 {
		return nil
	}
	d := liveDeltaOf(ds[len(ds)-1])
	return &d
}

// Stats reports the stream's ingestion counters.
func (ls *LiveStream) Stats() LiveStats {
	st := ls.ing.Stats()
	return LiveStats{
		Chunks:         st.Chunks,
		Segments:       st.Segments,
		WarmRefreshes:  st.WarmRefreshes,
		FullTrains:     st.FullTrains,
		DriftFallbacks: st.DriftFallbacks,
		EagerLabels:    st.EagerLabels,
		WastedLabels:   st.WastedLabels,
		ForcedCloses:   st.ForcedCloses,
		Deltas:         len(ls.fol.Deltas()),
	}
}
