// Package everest is a from-scratch Go reproduction of "Top-K Deep Video
// Analytics: A Probabilistic Approach" (SIGMOD 2021) — the Everest system.
//
// Everest answers Top-K and Top-K-window queries over video with a
// probabilistic guarantee: the returned result has probability ≥ thres of
// being the exact Top-K under possible-world semantics, and every returned
// score has been confirmed by the accurate oracle model.
//
// A query runs in two phases. Phase 1 samples frames, labels them with the
// oracle UDF, trains a convolutional mixture density network (CMDN) proxy,
// removes near-duplicate frames with a difference detector, and quantizes
// the proxy's score distributions into an uncertain relation D0. Phase 2
// is oracle-in-the-loop uncertain Top-K processing: it repeatedly cleans
// the uncertain tuples whose confirmation maximizes the expected result
// confidence until the guarantee holds.
//
// Usage:
//
//	src, _ := video.DatasetByName("Archie")   // or any video.Source
//	udf := vision.CountUDF{Class: video.ClassCar}
//	res, err := everest.Run(source, udf, everest.Config{K: 50, Threshold: 0.9})
//
// Beyond one-shot queries, the package implements the paper's stated
// future work and the multi-query layer it enables:
//
//   - RunParallel executes a query with P-way scale-out (partitioned
//     Phase 1, parallel batched cleaning — the RAM3S direction of §3.5).
//   - Config.Stride turns window queries into sliding windows; when
//     windows overlap the engine switches to a dependence-safe union
//     bound so the guarantee survives correlation.
//   - BuildIndex runs Phase 1 once at ingestion time; Index.Query serves
//     any number of Phase-2-only queries, Index.Extend ingests appended
//     footage incrementally, and Save/LoadIndex persist the artifact.
//   - NewSession shares every oracle-revealed frame score across the
//     queries of one analysis session, making repeats and drill-downs
//     oracle-free.
//
// All "runtimes" are simulated milliseconds accumulated on a
// simclock.Clock using a cost model calibrated to the paper's hardware;
// see internal/simclock.
package everest

import (
	"errors"
	"fmt"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
)

// Config parameterizes one Top-K query.
type Config struct {
	// K is the result size. Required.
	K int
	// Threshold is the probabilistic guarantee thres ∈ (0,1]; zero means
	// 0.9, the paper's default.
	Threshold float64
	// Window, when positive, turns the query into a Top-K tumbling-window
	// query over windows of this many frames (§3.4).
	Window int
	// Stride is the offset between consecutive window starts; zero means
	// Window (tumbling, the paper's §3.4). Stride < Window produces
	// overlapping sliding windows — an extension beyond the paper — whose
	// scores are correlated; the engine then automatically switches to the
	// dependence-safe union bound.
	Stride int
	// WindowSampleFrac is the fraction of a window's frames the oracle
	// scores when confirming it; zero means 0.1 (the paper's 10%).
	WindowSampleFrac float64
	// BatchSize is the Phase 2 cleaning batch b; zero means 8 (§3.5).
	BatchSize int
	// SampleFrac is the fraction of frames labelled for CMDN training.
	// Zero means 0.02. (The paper uses 0.5% of multi-million-frame videos;
	// scaled-down reproductions need a larger fraction to keep absolute
	// sample counts trainable — see DESIGN.md.)
	SampleFrac float64
	// SampleCap bounds the absolute number of training samples; zero
	// means 30000 (the paper's cap).
	SampleCap int
	// MinSamples floors the number of training samples; zero means 400.
	MinSamples int
	// HoldoutFrac sizes the holdout set relative to the training set;
	// zero means 0.1 (the paper's 3000-of-30000 ratio).
	HoldoutFrac float64
	// Diff configures the difference detector (§3.5 defaults when zero).
	Diff diffdet.Options
	// Proxy configures CMDN training; zero values use the paper grid with
	// the pooled backbone.
	Proxy cmdn.Config
	// Cost is the simulated cost model; zero-value means
	// simclock.Default().
	Cost simclock.CostModel
	// Seed drives all randomness; queries are bit-reproducible.
	Seed uint64
	// Procs bounds the real CPU workers used by the execution engine
	// (CMDN grid training, holdout evaluation, feature extraction, D0
	// proxy-inference sweeps, the difference detector, window
	// aggregation and Phase 2 candidate selection). Zero or negative
	// means GOMAXPROCS. The knob trades wall-clock only: results are
	// bit-identical for every value, and simulated (simclock) charges do
	// not change.
	Procs int
	// MaxCleaned caps Phase 2 oracle invocations (0 = none); a test and
	// safety valve, not a paper knob.
	MaxCleaned int
	// AdmissionLimit is the serving-path admission-control knob: it caps
	// how many oracle-heavy units (a lone Session.Query, or one whole
	// QueryBatch) may run concurrently against the session's label
	// cache; excess callers queue. For shared sessions the cap spans
	// every session on the same (video, UDF) cache, protecting the
	// oracle budget under fan-in. Zero means no cap. Admission changes
	// scheduling only — results stay bit-identical.
	AdmissionLimit int

	// DisableDiff skips the difference detector (ablation A4).
	DisableDiff bool
	// DisableEarlyStop disables the ψ-bound pruning (ablation A1).
	DisableEarlyStop bool
	// ResortOnce freezes the ψ sort at iteration 0 (ablation A2).
	ResortOnce bool
	// DisablePrefetch stops hiding cleaned frames' decode latency behind
	// oracle compute (§3.5 Prefetching; ablation A6).
	DisablePrefetch bool
	// UnionBound forces the Bonferroni confidence lower bound even when
	// the tuples are independent (ablation A7). Overlapping sliding
	// windows use it regardless of this flag.
	UnionBound bool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.9
	}
	if c.WindowSampleFrac == 0 {
		c.WindowSampleFrac = 0.1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.02
	}
	if c.SampleCap == 0 {
		c.SampleCap = 30000
	}
	if c.MinSamples == 0 {
		c.MinSamples = 600
	}
	if c.HoldoutFrac == 0 {
		c.HoldoutFrac = 0.1
	}
	if c.Cost == (simclock.CostModel{}) {
		c.Cost = simclock.Default()
	}
	return c
}

// queryPool returns a resident worker pool for one query or ingestion
// run (nil when the effective worker count is 1, where transient
// serial paths are exact already). The caller owns it: pass it down
// via the Pool options and Close it when the operation finishes.
func (c Config) queryPool() *workpool.Pool {
	if workpool.Procs(c.Procs) == 1 {
		return nil
	}
	return workpool.NewPool(c.Procs)
}

// phase1Options maps the user-facing Config onto Phase 1's options. The
// seed is supplied by the caller because the scale-out and append paths
// derive their own per-shard streams.
func (c Config) phase1Options(seed uint64) phase1.Options {
	return phase1.Options{
		SampleFrac:  c.SampleFrac,
		SampleCap:   c.SampleCap,
		MinSamples:  c.MinSamples,
		HoldoutFrac: c.HoldoutFrac,
		Diff:        c.Diff,
		DisableDiff: c.DisableDiff,
		Proxy:       c.Proxy,
		Cost:        c.Cost,
		Seed:        seed,
		Procs:       c.Procs,
	}
}

// windowStride returns the effective window stride (tumbling by default).
func (c Config) windowStride() int {
	if c.Stride <= 0 {
		return c.Window
	}
	return c.Stride
}

// boundKind selects the Phase 2 confidence computation: the paper's exact
// independent product unless the tuples are correlated (overlapping
// windows) or the caller forces the conservative bound.
func (c Config) boundKind() core.BoundKind {
	if c.UnionBound || (c.Window > 0 && c.windowStride() < c.Window) {
		return core.BoundUnion
	}
	return core.BoundIndependent
}

// Phase1Info reports what Phase 1 did.
type Phase1Info struct {
	// TotalFrames is the video length.
	TotalFrames int
	// TrainSamples and HoldoutSamples are the labelled sample counts.
	TrainSamples, HoldoutSamples int
	// Retained is the number of frames surviving the difference detector.
	Retained int
	// Tuples is the size of the uncertain relation D0 (frames or windows).
	Tuples int
	// Hyper is the selected CMDN grid point.
	Hyper cmdn.Hyper
	// HoldoutNLL is its selection criterion value.
	HoldoutNLL float64
}

// Result is a guaranteed Top-K answer.
type Result struct {
	// IDs lists the Top-K frame indices (or window indices for window
	// queries) in descending score order.
	IDs []int
	// Scores are the oracle-confirmed scores of IDs (level-quantized for
	// non-counting UDFs).
	Scores []float64
	// Confidence is Pr(result = exact Top-K) ≥ Threshold at termination.
	// Under the union bound (overlapping windows, Config.UnionBound) it is
	// a lower bound on that probability.
	Confidence float64
	// Bound records the confidence computation used.
	Bound core.BoundKind
	// IsWindow marks window-query results.
	IsWindow bool
	// WindowSize echoes Config.Window for window queries.
	WindowSize int
	// WindowStride echoes the effective stride for window queries
	// (WindowSize for tumbling).
	WindowStride int
	// Clock holds the simulated cost of the whole query, by phase.
	Clock *simclock.Clock
	// EngineStats are the Phase 2 counters (Table 8b).
	EngineStats core.Stats
	// Phase1 reports Phase 1 statistics (Table 8a).
	Phase1 Phase1Info
}

// Run executes a Top-K query over src with the given scoring UDF.
func Run(src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("everest: K must be positive, got %d", cfg.K)
	}
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("everest: threshold must be in (0,1], got %v", cfg.Threshold)
	}
	n := src.NumFrames()
	if n == 0 {
		return nil, errors.New("everest: empty video")
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("everest: negative window %d", cfg.Window)
	}
	if cfg.Window == 0 && cfg.Stride > 0 {
		return nil, fmt.Errorf("everest: stride %d given without a window", cfg.Stride)
	}
	if cfg.Window > 0 {
		if nw := windows.NumSlidingWindows(n, cfg.Window, cfg.windowStride()); nw < cfg.K {
			return nil, fmt.Errorf("everest: only %d windows of %d frames (stride %d) but K=%d",
				nw, cfg.Window, cfg.windowStride(), cfg.K)
		}
	}

	clock := simclock.NewClock()
	// One resident worker pool serves the whole query: Phase 1 fan-outs,
	// window aggregation and Phase 2's speculative selection blocks all
	// reuse the same goroutines.
	pool := cfg.queryPool()
	if pool != nil {
		defer pool.Close()
	}
	p1opts := cfg.phase1Options(cfg.Seed)
	p1opts.Pool = pool
	p1, err := phase1.Run(src, udf, p1opts, clock)
	if err != nil {
		return nil, err
	}

	qopt := udf.Quantize()
	var rel uncertain.Relation
	var oracle core.Oracle
	engineCost := cfg.Cost
	if cfg.Window > 0 {
		rel, err = p1.WindowRelationStrided(cfg.Window, cfg.windowStride(), qopt)
		if err != nil {
			return nil, err
		}
		wOracle := &windows.Oracle{
			ScoreFrames: func(ids []int) ([]float64, error) {
				return udf.Score(src, ids), nil
			},
			Size:       cfg.Window,
			Stride:     cfg.windowStride(),
			SampleFrac: cfg.WindowSampleFrac,
			Step:       qopt.Step,
			Seed:       cfg.Seed,
		}
		// The engine charges OracleMS per cleaned tuple; a window
		// confirmation scores SamplesPerWindow frames.
		engineCost.OracleMS = cfg.Cost.OracleMS * float64(wOracle.SamplesPerWindow())
		oracle = wOracle
	} else {
		rel = p1.FrameRelation(qopt)
		oracle = core.OracleFunc(func(ids []int) ([]int, error) {
			scores := udf.Score(src, ids)
			levels := make([]int, len(ids))
			for i, s := range scores {
				levels[i] = uncertain.LevelOf(s, qopt.Step)
			}
			return levels, nil
		})
	}
	if cfg.K > len(rel) {
		return nil, fmt.Errorf("everest: K=%d exceeds relation size %d", cfg.K, len(rel))
	}

	coreCfg := core.Config{
		K:                cfg.K,
		Threshold:        cfg.Threshold,
		BatchSize:        cfg.BatchSize,
		MaxCleaned:       cfg.MaxCleaned,
		DisableEarlyStop: cfg.DisableEarlyStop,
		ResortOnce:       cfg.ResortOnce,
		Bound:            cfg.boundKind(),
		Procs:            cfg.Procs,
		Pool:             pool,
	}
	if cfg.DisablePrefetch {
		coreCfg.UnhiddenDecodeMS = cfg.Cost.DecodeMS
	}
	eng, err := core.NewEngine(rel, coreCfg, oracle, clock, engineCost)
	if err != nil {
		return nil, err
	}
	coreRes, err := eng.Run()
	if err != nil {
		return nil, err
	}

	scores := make([]float64, len(coreRes.Levels))
	for i, lvl := range coreRes.Levels {
		scores[i] = uncertain.LevelValue(lvl, qopt.Step)
	}
	stride := 0
	if cfg.Window > 0 {
		stride = cfg.windowStride()
	}
	return &Result{
		IDs:          coreRes.IDs,
		Scores:       scores,
		Confidence:   coreRes.Confidence,
		Bound:        coreRes.Bound,
		IsWindow:     cfg.Window > 0,
		WindowSize:   cfg.Window,
		WindowStride: stride,
		Clock:        clock,
		EngineStats:  coreRes.Stats,
		Phase1: Phase1Info{
			TotalFrames:    p1.Info.TotalFrames,
			TrainSamples:   p1.Info.TrainSamples,
			HoldoutSamples: p1.Info.HoldoutSamples,
			Retained:       p1.Info.Retained,
			Tuples:         len(rel),
			Hyper:          p1.Info.Hyper,
			HoldoutNLL:     p1.Info.HoldoutNLL,
		},
	}, nil
}
