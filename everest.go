// Package everest is a from-scratch Go reproduction of "Top-K Deep Video
// Analytics: A Probabilistic Approach" (SIGMOD 2021) — the Everest system.
//
// Everest answers Top-K and Top-K-window queries over video with a
// probabilistic guarantee: the returned result has probability ≥ thres of
// being the exact Top-K under possible-world semantics, and every returned
// score has been confirmed by the accurate oracle model.
//
// A query runs in two phases. Phase 1 samples frames, labels them with the
// oracle UDF, trains a convolutional mixture density network (CMDN) proxy,
// removes near-duplicate frames with a difference detector, and quantizes
// the proxy's score distributions into an uncertain relation D0. Phase 2
// is oracle-in-the-loop uncertain Top-K processing: it repeatedly cleans
// the uncertain tuples whose confirmation maximizes the expected result
// confidence until the guarantee holds.
//
// Usage:
//
//	src, _ := video.DatasetByName("Archie")   // or any video.Source
//	udf := vision.CountUDF{Class: video.ClassCar}
//	res, err := everest.Run(source, udf, everest.Config{K: 50, Threshold: 0.9})
//
// Beyond one-shot queries, the package implements the paper's stated
// future work and the multi-query layer it enables:
//
//   - RunParallel executes a query with P-way scale-out (partitioned
//     Phase 1, parallel batched cleaning — the RAM3S direction of §3.5).
//   - Config.Stride turns window queries into sliding windows; when
//     windows overlap the engine switches to a dependence-safe union
//     bound so the guarantee survives correlation.
//   - BuildIndex runs Phase 1 once at ingestion time; Index.Query serves
//     any number of Phase-2-only queries, Index.Extend ingests appended
//     footage incrementally, and Save/LoadIndex persist the artifact.
//   - NewSession shares every oracle-revealed frame score across the
//     queries of one analysis session, making repeats and drill-downs
//     oracle-free.
//   - Config.Coalesce batches compatible in-flight session queries —
//     across users, with NewSharedSession — into one engine run that
//     labels overlapping frames once (bit-identical to serial
//     execution in submission order).
//
// Every entrypoint compiles its Config to an explicit query plan
// executed by the one pipeline in internal/engine; see DESIGN.md's
// "Engine pipeline & scheduler" contract.
//
// All "runtimes" are simulated milliseconds accumulated on a
// simclock.Clock using a cost model calibrated to the paper's hardware;
// see internal/simclock.
package everest

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Config parameterizes one Top-K query.
type Config struct {
	// K is the result size. Required.
	K int
	// Threshold is the probabilistic guarantee thres ∈ (0,1]; zero means
	// 0.9, the paper's default.
	Threshold float64
	// Window, when positive, turns the query into a Top-K tumbling-window
	// query over windows of this many frames (§3.4).
	Window int
	// Stride is the offset between consecutive window starts; zero means
	// Window (tumbling, the paper's §3.4). Stride < Window produces
	// overlapping sliding windows — an extension beyond the paper — whose
	// scores are correlated; the engine then automatically switches to the
	// dependence-safe union bound.
	Stride int
	// WindowSampleFrac is the fraction of a window's frames the oracle
	// scores when confirming it; zero means 0.1 (the paper's 10%).
	WindowSampleFrac float64
	// BatchSize is the Phase 2 cleaning batch b; zero means 8 (§3.5).
	BatchSize int
	// SampleFrac is the fraction of frames labelled for CMDN training.
	// Zero means 0.02. (The paper uses 0.5% of multi-million-frame videos;
	// scaled-down reproductions need a larger fraction to keep absolute
	// sample counts trainable — see DESIGN.md.)
	SampleFrac float64
	// SampleCap bounds the absolute number of training samples; zero
	// means 30000 (the paper's cap).
	SampleCap int
	// MinSamples floors the number of training samples; zero means 400.
	MinSamples int
	// HoldoutFrac sizes the holdout set relative to the training set;
	// zero means 0.1 (the paper's 3000-of-30000 ratio).
	HoldoutFrac float64
	// Diff configures the difference detector (§3.5 defaults when zero).
	Diff diffdet.Options
	// Proxy configures CMDN training; zero values use the paper grid with
	// the pooled backbone.
	Proxy cmdn.Config
	// Cost is the simulated cost model; zero-value means
	// simclock.Default().
	Cost simclock.CostModel
	// Seed drives all randomness; queries are bit-reproducible.
	Seed uint64
	// Procs bounds the real CPU workers used by the execution engine
	// (CMDN grid training, holdout evaluation, feature extraction, D0
	// proxy-inference sweeps, the difference detector, window
	// aggregation and Phase 2 candidate selection). Zero or negative
	// means GOMAXPROCS. The knob trades wall-clock only: results are
	// bit-identical for every value, and simulated (simclock) charges do
	// not change.
	Procs int
	// MaxCleaned caps Phase 2 oracle invocations (0 = none); a test and
	// safety valve, not a paper knob.
	MaxCleaned int
	// AdmissionLimit is the serving-path admission-control knob: it caps
	// how many oracle-heavy units (a lone Session.Query, or one whole
	// QueryBatch) may run concurrently against the session's label
	// cache; excess callers queue. For shared sessions the cap spans
	// every session on the same (video, UDF) cache, protecting the
	// oracle budget under fan-in. Zero or negative means no cap.
	// Admission changes scheduling only — results stay bit-identical.
	AdmissionLimit int
	// Coalesce routes Session queries through the label cache's
	// cross-query scheduler: compatible queries submitted while another
	// runs are batched into one engine run that shares a single label
	// overlay and worker pool, so overlapping frames are labeled once
	// and charged once. Results are bit-identical to executing the same
	// queries serially in submission order, each seeing its
	// predecessors' labels (see DESIGN.md "Engine pipeline &
	// scheduler"). A coalesced QueryBatch runs its queries as one
	// pre-formed group in input order.
	Coalesce bool
	// CoalesceWait is the latency budget a coalesced query grants the
	// scheduler: the group leader holds the group open up to the longest
	// wait its queued queries request, so compatible near-simultaneous
	// arrivals land in one engine run instead of the group committing on
	// first-submitter timing. Zero (the default) commits immediately.
	// Trades bounded added latency for wider groups under load;
	// scheduling only — results and per-query charges never change.
	// Ignored without Coalesce.
	CoalesceWait time.Duration
	// UseMux routes the query's Phase 2 oracle confirmation batches
	// through the process-wide oracle multiplexer (internal/oraclemux),
	// which consolidates in-flight confirmation batches from all runs —
	// across sessions, caches and videos — into device batches, the way
	// a serving deployment funnels every query's oracle work through one
	// GPU-resident model. Device-side accounting only: results and the
	// query's own simulated charges are bit-identical to direct
	// dispatch.
	UseMux bool
	// CacheTTL, when positive, bounds how long a published label batch
	// stays in the session's label cache: on each publish or snapshot,
	// batches older than the TTL are evicted (the eviction bumps the
	// cache version; queries pinned to earlier snapshots are
	// unaffected). Protects long-lived process-wide caches over
	// drifting videos. Zero leaves the cache's current policy untouched
	// (keep forever by default); a negative value clears an installed
	// policy, restoring the unbounded default.
	CacheTTL time.Duration
	// CacheMaxLabels, when positive, caps how many policy-governed
	// labels the cache holds: after a publish pushes it past the cap,
	// the oldest publish batches are evicted until it fits. Zero leaves
	// the current policy untouched (unbounded by default); negative
	// clears it. Policies are per cache and install strictest-wins: on
	// a shared cache, conflicting sessions resolve to the tightest
	// bound per knob, and a zero knob never erases a bound a sibling
	// session set. A negative knob is the explicit reset — it clears
	// the whole policy for every session on the cache first; a
	// positive knob alongside it then installs into the cleared state
	// (the one way to loosen a shared bound).
	CacheMaxLabels int
	// DurableDir, when non-empty, makes the session's label cache
	// crash-safe: every publish and eviction is logged to a
	// checksummed write-ahead log in this directory (with periodic
	// atomic checkpoints) before its version becomes observable, and a
	// restarted process recovers the newest consistent prefix of that
	// history — the oracle bill the cache represents survives a crash.
	// The directory belongs to exactly one (video, UDF) cache;
	// attaching it to a different cache, or pointing one session at two
	// directories, is an error. Ignored outside sessions (Run,
	// Index.Query). See DESIGN.md "Durability & crash recovery".
	DurableDir string
	// DeadlineMS bounds the query's simulated cost: once the query's
	// simclock reaches this many simulated milliseconds mid-run, the
	// Phase 2 loop stops — returning an explicitly marked degraded
	// answer when DegradedOK is set, and ErrDeadline otherwise. The
	// budget is charged on the simulated clock (§3.5), so a query that
	// finishes within it is bit-identical — results AND charges — to an
	// unbounded one. Zero or negative means no deadline.
	DeadlineMS float64
	// Retries caps how many times a transient oracle failure (a UDF
	// error or panic classified retryable) is retried per dispatch
	// before the query fails with a typed *OracleError. Zero or
	// negative means fail on first error.
	Retries int
	// RetryBackoffMS is the initial retry backoff, doubling per attempt
	// and capped at 32× the base. The waits are simulated — charged to
	// the clock's retry-backoff phase, never slept — so retried queries
	// remain deterministic. Zero with Retries set uses 100 simulated ms.
	RetryBackoffMS float64
	// DegradedOK permits graceful degradation: when the oracle stays
	// down past the retry budget, or the deadline expires, the query
	// returns a best-effort Top-K (confirmed frames first, the rest
	// estimated from proxy scores) carrying an explicit Result.Degraded
	// marker instead of failing. Unconfirmed estimates are never
	// published to the session's label cache.
	DegradedOK bool

	// DisableDiff skips the difference detector (ablation A4).
	DisableDiff bool
	// DisableEarlyStop disables the ψ-bound pruning (ablation A1).
	DisableEarlyStop bool
	// ResortOnce freezes the ψ sort at iteration 0 (ablation A2).
	ResortOnce bool
	// DisablePrefetch stops hiding cleaned frames' decode latency behind
	// oracle compute (§3.5 Prefetching; ablation A6).
	DisablePrefetch bool
	// UnionBound forces the Bonferroni confidence lower bound even when
	// the tuples are independent (ablation A7). Overlapping sliding
	// windows use it regardless of this flag.
	UnionBound bool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.9
	}
	if c.WindowSampleFrac == 0 {
		c.WindowSampleFrac = 0.1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.02
	}
	if c.SampleCap == 0 {
		c.SampleCap = 30000
	}
	if c.MinSamples == 0 {
		c.MinSamples = 600
	}
	if c.HoldoutFrac == 0 {
		c.HoldoutFrac = 0.1
	}
	if c.Cost == (simclock.CostModel{}) {
		c.Cost = simclock.Default()
	}
	return c
}

// phase1Options maps the user-facing Config onto Phase 1's options. The
// seed is supplied by the caller because the scale-out and append paths
// derive their own per-shard streams.
func (c Config) phase1Options(seed uint64) phase1.Options {
	return phase1.Options{
		SampleFrac:  c.SampleFrac,
		SampleCap:   c.SampleCap,
		MinSamples:  c.MinSamples,
		HoldoutFrac: c.HoldoutFrac,
		Diff:        c.Diff,
		DisableDiff: c.DisableDiff,
		Proxy:       c.Proxy,
		Cost:        c.Cost,
		Seed:        seed,
		Procs:       c.Procs,
	}
}

// plan compiles the (defaulted) Config down to the engine's explicit
// query plan: every entrypoint — Run, Index.Query, Extend's tail
// ingest, Session queries — goes through this one translation, so the
// pipeline semantics live in internal/engine alone. The caller
// validates via engine.NewPlan / Plan.ValidateFor.
func (c Config) plan() engine.Plan {
	return engine.Plan{
		K:         c.K,
		Threshold: c.Threshold,
		Window: engine.WindowSpec{
			Size:       c.Window,
			Stride:     c.Stride,
			SampleFrac: c.WindowSampleFrac,
		},
		BatchSize:        c.BatchSize,
		MaxCleaned:       c.MaxCleaned,
		DisableEarlyStop: c.DisableEarlyStop,
		ResortOnce:       c.ResortOnce,
		DisablePrefetch:  c.DisablePrefetch,
		ForceUnionBound:  c.UnionBound,
		Procs:            c.Procs,
		Seed:             c.Seed,
		Cost:             c.Cost,
		AdmissionLimit:   c.AdmissionLimit,
		CoalesceWait:     c.CoalesceWait,
		UseMux:           c.UseMux,
		DeadlineMS:       c.DeadlineMS,
		Retries:          c.Retries,
		RetryBackoffMS:   c.RetryBackoffMS,
		DegradedOK:       c.DegradedOK,
		Ingest:           c.phase1Options(c.Seed),
	}.Normalize()
}

// PlanKnob is one engine setting of a compiled Config, rendered for
// plan introspection (EXPLAIN / EXPLAIN ANALYZE reports).
type PlanKnob struct {
	Name, Value string
}

// PlanKnobs renders the engine knob settings this Config compiles to,
// in a fixed deterministic order. Coalesce is prepended because it
// lives on Config (it selects the Session submission path) rather than
// on the engine plan itself.
func (c Config) PlanKnobs() []PlanKnob {
	c = c.withDefaults()
	ks := []PlanKnob{{"coalesce", fmt.Sprintf("%t", c.Coalesce)}}
	for _, k := range c.plan().Knobs() {
		ks = append(ks, PlanKnob(k))
	}
	return ks
}

// Phase1Info reports what Phase 1 did.
type Phase1Info struct {
	// TotalFrames is the video length.
	TotalFrames int
	// TrainSamples and HoldoutSamples are the labelled sample counts.
	TrainSamples, HoldoutSamples int
	// Retained is the number of frames surviving the difference detector.
	Retained int
	// Tuples is the size of the uncertain relation D0 (frames or windows).
	Tuples int
	// Hyper is the selected CMDN grid point.
	Hyper cmdn.Hyper
	// HoldoutNLL is its selection criterion value.
	HoldoutNLL float64
}

// Result is a guaranteed Top-K answer.
type Result struct {
	// IDs lists the Top-K frame indices (or window indices for window
	// queries) in descending score order.
	IDs []int
	// Scores are the oracle-confirmed scores of IDs (level-quantized for
	// non-counting UDFs).
	Scores []float64
	// Confidence is Pr(result = exact Top-K) ≥ Threshold at termination.
	// Under the union bound (overlapping windows, Config.UnionBound) it is
	// a lower bound on that probability.
	Confidence float64
	// Bound records the confidence computation used.
	Bound core.BoundKind
	// IsWindow marks window-query results.
	IsWindow bool
	// WindowSize echoes Config.Window for window queries.
	WindowSize int
	// WindowStride echoes the effective stride for window queries
	// (WindowSize for tumbling).
	WindowStride int
	// Clock holds the simulated cost of the whole query, by phase.
	Clock *simclock.Clock
	// EngineStats are the Phase 2 counters (Table 8b).
	EngineStats core.Stats
	// Phase1 reports Phase 1 statistics (Table 8a).
	Phase1 Phase1Info
	// Retries counts transient oracle failures the query retried;
	// RetryBackoffMS is the simulated backoff those retries cost (also
	// on the Clock, under the retry-backoff phase). Zero on fault-free
	// queries.
	Retries        int
	RetryBackoffMS float64
	// Degraded is non-nil when the query degraded gracefully
	// (Config.DegradedOK): the answer is best-effort, its Unconfirmed
	// members carry proxy estimates rather than oracle-confirmed
	// scores, and Confidence is the guarantee actually reached.
	Degraded *Degraded
}

// Degraded documents a best-effort answer: why the query degraded
// ("deadline" or "oracle"), which result IDs are unconfirmed proxy
// estimates, and the simulated cost spent when it stopped.
type Degraded = core.Degraded

// OracleError is the typed failure of an oracle (UDF) dispatch: it
// carries the failing UDF's name, the frame IDs of the failed batch,
// and — when the UDF panicked — the recovered panic value. Queries
// whose oracle fails past the retry budget return one (wrapped);
// errors.As extracts it.
type OracleError = vision.OracleError

// ErrDeadline is returned (wrapped) when a query's Config.DeadlineMS
// expires and DegradedOK is not set.
var ErrDeadline = core.ErrDeadline

// phase1InfoOf converts the ingest stage's statistics into the public
// report shape (Tuples is per-query and filled in by resultOf).
func phase1InfoOf(in phase1.Info) Phase1Info {
	return Phase1Info{
		TotalFrames:    in.TotalFrames,
		TrainSamples:   in.TrainSamples,
		HoldoutSamples: in.HoldoutSamples,
		Retained:       in.Retained,
		Hyper:          in.Hyper,
		HoldoutNLL:     in.HoldoutNLL,
	}
}

// resultOf converts an engine outcome into the public Result.
func resultOf(out *engine.Outcome, p engine.Plan, info Phase1Info) *Result {
	info.Tuples = out.Tuples
	stride := 0
	if p.Window.Enabled() {
		stride = p.Window.Stride
	}
	return &Result{
		IDs:            out.IDs,
		Scores:         out.Scores,
		Confidence:     out.Confidence,
		Bound:          out.Bound,
		IsWindow:       p.Window.Enabled(),
		WindowSize:     p.Window.Size,
		WindowStride:   stride,
		Clock:          out.Clock,
		EngineStats:    out.Stats,
		Phase1:         info,
		Retries:        out.Retries,
		RetryBackoffMS: out.BackoffMS,
		Degraded:       out.Degraded,
	}
}

// Run executes a Top-K query over src with the given scoring UDF: it
// compiles the Config to an engine plan, ingests Phase 1 into an
// artifact and executes the plan against it — the same pipeline every
// other entrypoint uses, sharing one clock and worker pool across both
// stages.
func Run(src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), src, udf, cfg)
}

// RunCtx is Run with a cancellable context: a cancelled ctx stops the
// Phase 2 loop and returns ctx.Err(). Phase 1 ingestion runs to
// completion (it is the reusable artifact, not per-query work).
func RunCtx(ctx context.Context, src video.Source, udf vision.UDF, cfg Config) (*Result, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	plan, err := engine.NewPlan(cfg.plan())
	if err != nil {
		return nil, err
	}
	if err := plan.ValidateFor(src.NumFrames()); err != nil {
		return nil, err
	}
	art, out, err := engine.Run(ctx, src, udf, plan)
	if err != nil {
		return nil, err
	}
	return resultOf(out, plan, phase1InfoOf(art.Info)), nil
}
