package everest

import (
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// assertSameResult fails unless two results are bit-identical in every
// field a query answer exposes.
func assertSameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Confidence != want.Confidence {
		t.Fatalf("%s: confidence %v != %v", name, got.Confidence, want.Confidence)
	}
	if got.EngineStats != want.EngineStats {
		t.Fatalf("%s: stats %+v != %+v", name, got.EngineStats, want.EngineStats)
	}
	if got.Clock.TotalMS() != want.Clock.TotalMS() {
		t.Fatalf("%s: simulated cost %v != %v", name, got.Clock.TotalMS(), want.Clock.TotalMS())
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("%s: result size %d != %d", name, len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] || got.Scores[i] != want.Scores[i] {
			t.Fatalf("%s: result %d (%d, %v) != (%d, %v)",
				name, i, got.IDs[i], got.Scores[i], want.IDs[i], want.Scores[i])
		}
	}
}

// TestQueryBatchBitIdentical is the concurrent-serving determinism
// contract: a batch of queries launched together over one cache snapshot
// must return, for each member, exactly what a lone query from the same
// cache state returns — regardless of goroutine interleaving.
func TestQueryBatchBitIdentical(t *testing.T) {
	src := testSource(t, 9000, 91)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	wcfg := smallCfg(3)
	wcfg.Window = 30
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// References: independent empty-cache queries (Index.Query shares the
	// same Phase 2 path with a nil cache).
	refFrame, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refWindow, err := ix.Query(src, udf, wcfg)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.QueryBatch([]Config{cfg, wcfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "batch[0] (frame)", results[0], refFrame)
	assertSameResult(t, "batch[1] (window)", results[1], refWindow)
	assertSameResult(t, "batch[2] (frame, same cfg)", results[2], refFrame)
	if sess.Queries() != 3 {
		t.Fatalf("Queries() = %d, want 3", sess.Queries())
	}

	// From the merged post-batch state, N concurrent copies of one query
	// must be identical to each other and to a lone Query from that state.
	clone, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clone.QueryBatch([]Config{cfg, wcfg, cfg}); err != nil {
		t.Fatal(err)
	}
	lone, err := clone.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sess.RunConcurrent(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range conc {
		assertSameResult(t, "concurrent caller", r, conc[0])
		if i == 0 {
			assertSameResult(t, "concurrent vs lone", r, lone)
		}
	}
}

// TestSessionConcurrentQueryStress hammers one session with free-running
// concurrent Query calls (frame and window mixed). Under -race this
// proves the shared label cache is data-race free; the assertions check
// that every answer keeps the engine's guarantees — confirmed (true)
// scores and confidence ≥ thres — whatever snapshot each call observed.
func TestSessionConcurrentQueryStress(t *testing.T) {
	src := testSource(t, 9000, 97)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		qcfg := smallCfg(5)
		if i%2 == 1 {
			qcfg = smallCfg(3)
			qcfg.Window = 30
		}
		wg.Add(1)
		go func(i int, qcfg Config) {
			defer wg.Done()
			results[i], errs[i] = sess.Query(qcfg)
		}(i, qcfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i, r := range results {
		if r.Confidence < 0.9 {
			t.Fatalf("caller %d: confidence %v < 0.9", i, r.Confidence)
		}
		if r.IsWindow {
			continue // window scores are sample means, not exact counts
		}
		for k, id := range r.IDs {
			if int(r.Scores[k]) != src.TrueCountFast(id) {
				t.Fatalf("caller %d: frame %d score %v, truth %d",
					i, id, r.Scores[k], src.TrueCountFast(id))
			}
		}
	}
	if sess.Queries() != callers {
		t.Fatalf("Queries() = %d, want %d", sess.Queries(), callers)
	}
	if sess.CachedLabels() == 0 {
		t.Fatal("stress run left the label cache empty")
	}
}
