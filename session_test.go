package everest

import (
	"testing"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func TestSessionMatchesIndexQuery(t *testing.T) {
	// The first query of a fresh session must return exactly what a plain
	// indexed query returns: an empty cache changes nothing.
	src := testSource(t, 9000, 61)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.IDs) != len(cached.IDs) {
		t.Fatalf("result sizes differ: %d vs %d", len(plain.IDs), len(cached.IDs))
	}
	for i := range plain.IDs {
		if plain.IDs[i] != cached.IDs[i] {
			t.Fatalf("results diverge at %d", i)
		}
	}
	if plain.Confidence != cached.Confidence {
		t.Fatalf("confidence diverges: %v vs %v", plain.Confidence, cached.Confidence)
	}
	if plain.Clock.TotalMS() != cached.Clock.TotalMS() {
		t.Fatalf("first-session-query cost %v differs from plain %v",
			cached.Clock.TotalMS(), plain.Clock.TotalMS())
	}
}

func TestSessionRepeatQueryIsOracleFree(t *testing.T) {
	// Re-running the identical query must clean nothing: every frame the
	// first run confirmed is already certain in the second run's D0.
	src := testSource(t, 9000, 67)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := sess.CachedLabels()
	if labels != first.EngineStats.Cleaned {
		t.Fatalf("cache has %d labels, first query cleaned %d", labels, first.EngineStats.Cleaned)
	}
	second, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.EngineStats.Cleaned != 0 {
		t.Fatalf("repeat query cleaned %d frames, want 0", second.EngineStats.Cleaned)
	}
	if sess.CachedLabels() != labels {
		t.Fatalf("repeat query grew the cache: %d -> %d", labels, sess.CachedLabels())
	}
	for i := range first.IDs {
		if first.IDs[i] != second.IDs[i] {
			t.Fatalf("repeat query changed the answer at %d", i)
		}
	}
	if sess.Queries() != 2 {
		t.Fatalf("Queries() = %d, want 2", sess.Queries())
	}
}

func TestSessionSmallerKIsFree(t *testing.T) {
	// After a Top-10, a Top-3 needs no new oracle work: its contenders are
	// a subset of frames already confirmed (plus the already-certain D0).
	src := testSource(t, 9000, 71)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	big := smallCfg(10)
	if _, err := sess.Query(big); err != nil {
		t.Fatal(err)
	}
	small := smallCfg(3)
	res, err := sess.Query(small)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineStats.Cleaned != 0 {
		t.Fatalf("Top-3 after Top-10 cleaned %d frames, want 0", res.EngineStats.Cleaned)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
}

func TestSessionMarginalCostDeclines(t *testing.T) {
	// A growing-threshold sequence: each later query can only reuse more,
	// so cumulative oracle work is sublinear in query count. We assert the
	// weaker, deterministic property that total cleaned across the
	// sequence is at most what independent queries would clean.
	src := testSource(t, 9000, 73)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	threses := []float64{0.5, 0.9, 0.99}

	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	var sessionCleaned, aloneCleaned int
	for _, th := range threses {
		cfg := smallCfg(5)
		cfg.Threshold = th
		res, err := sess.Query(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sessionCleaned += res.EngineStats.Cleaned

		alone, err := ix.Query(src, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		aloneCleaned += alone.EngineStats.Cleaned
	}
	if sessionCleaned > aloneCleaned {
		t.Fatalf("session cleaned %d frames, independent queries %d — cache made it worse",
			sessionCleaned, aloneCleaned)
	}
}

func TestSessionWindowQuerySeedsFrameCache(t *testing.T) {
	// Window confirmations sample frames; those exact scores then flow
	// into later frame queries through the cache.
	src := testSource(t, 9000, 79)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := smallCfg(3)
	wcfg.Window = 30
	wres, err := sess.Query(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !wres.IsWindow {
		t.Fatal("expected a window result")
	}
	if wres.EngineStats.Cleaned > 0 && sess.CachedLabels() == 0 {
		t.Fatal("window confirmations did not populate the frame cache")
	}
	fres, err := sess.Query(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if fres.Confidence < 0.9 {
		t.Fatalf("frame query after window query: confidence %v", fres.Confidence)
	}
}

func TestBatchAdmissionLimit(t *testing.T) {
	lim := func(ls ...int) []Config {
		cfgs := make([]Config, len(ls))
		for i, l := range ls {
			cfgs[i] = Config{AdmissionLimit: l}
		}
		return cfgs
	}
	cases := []struct {
		name string
		cfgs []Config
		want int
	}{
		{"empty batch", nil, 0},
		{"single unset", lim(0), 0},
		{"single positive", lim(3), 3},
		{"single negative", lim(-2), 0},
		{"all unset", lim(0, 0, 0), 0},
		{"all negative", lim(-1, -5, -2), 0},
		{"heterogeneous positives pick strictest", lim(5, 2, 9), 2},
		{"zero does not override a positive", lim(0, 4, 0), 4},
		{"negative does not override a positive", lim(-1, 4, -7), 4},
		{"positive then stricter", lim(3, 1), 1},
		{"stricter then looser", lim(1, 3), 1},
		{"mixed everything", lim(0, -3, 7, 2, 0, 11), 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := batchAdmissionLimit(c.cfgs); got != c.want {
				t.Fatalf("batchAdmissionLimit(%v) = %d, want %d", c.cfgs, got, c.want)
			}
		})
	}
}

func TestQueryBatchNegativeAdmissionLimitRuns(t *testing.T) {
	// A batch whose members explicitly disable admission (negative
	// limits) must run uncapped rather than deadlock or misbehave.
	src := testSource(t, 6000, 87)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.AdmissionLimit = -1
	results, err := sess.QueryBatch([]Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Confidence < 0.9 {
		t.Fatalf("negative-limit batch misbehaved: %v", results)
	}
}

func TestSessionValidation(t *testing.T) {
	src := testSource(t, 6000, 83)
	other := testSource(t, 5000, 84) // different length: not the indexed video
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(ix, other, udf); err == nil {
		t.Fatal("session over a different video must be rejected")
	}
	if _, err := NewSession(ix, src, vision.CountUDF{Class: video.ClassBus}); err == nil {
		t.Fatal("session over a different UDF must be rejected")
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(Config{K: 0}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}
