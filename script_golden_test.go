package everest_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/everest-project/everest/internal/eql"
)

// goldenScript mixes frame and window statements over two videos.
// Statements 1–3 share the (Archie, 3000 frames, count(car), seed 3)
// sub-plan, so the compiled script binds them to one relation; the
// Grand-Canal statement is its own relation in the same budget.
const goldenScript = `
SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 3;
SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 3;
SELECT TOP 4 FRAMES FROM Archie RANK BY count(car) THRESHOLD 0.95 LIMIT FRAMES 3000 SEED 3;
SELECT TOP 3 FRAMES FROM "Grand-Canal" RANK BY count(boat) LIMIT FRAMES 2000 SEED 3
`

func goldenStatements(t testing.TB) []string {
	var stmts []string
	for _, s := range strings.Split(goldenScript, ";") {
		if s = strings.TrimSpace(s); s != "" {
			stmts = append(stmts, s)
		}
	}
	if len(stmts) != 4 {
		t.Fatalf("golden script has %d statements, want 4", len(stmts))
	}
	return stmts
}

// TestScriptGolden is the repo's script determinism contract: the
// coordinated script produces bit-identical results and simulated
// charges to executing its statements one at a time in order on a
// fresh shared session, at every worker-pool width — and its total
// oracle bill is strictly below the sum of fully independent runs.
func TestScriptGolden(t *testing.T) {
	stmts := goldenStatements(t)

	// Serial reference: one fresh session, statements executed alone in
	// script order.
	serial := eql.NewScriptSession()
	var want []*eql.UnitResult
	for _, stmt := range stmts {
		r, err := serial.Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r.Statements[0].Units[0])
	}

	// Independent baseline: every statement pays its own Phase 1 and
	// oracle bill on a private session.
	independentCalls := 0
	for _, stmt := range stmts {
		r, err := eql.NewScriptSession().Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		independentCalls += r.OracleCalls
	}

	for _, procs := range []int{1, 2, 8} {
		res, err := eql.NewScriptSession().ExecWith(goldenScript, eql.ScriptOptions{Procs: procs})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Relations != 2 || res.SharedUnits != 2 {
			t.Fatalf("procs=%d: compiled to %d relations / %d shared units, want 2 / 2",
				procs, res.Relations, res.SharedUnits)
		}
		for i, sr := range res.Statements {
			got := sr.Units[0].Result
			ref := want[i].Result
			if !reflect.DeepEqual(got.IDs, ref.IDs) || !reflect.DeepEqual(got.Scores, ref.Scores) {
				t.Fatalf("procs=%d statement %d: answers differ from serial\n got %v\nwant %v",
					procs, i, got.IDs, ref.IDs)
			}
			if got.Confidence != ref.Confidence {
				t.Fatalf("procs=%d statement %d: confidence %v vs serial %v",
					procs, i, got.Confidence, ref.Confidence)
			}
			if got.EngineStats.OracleCalls != ref.EngineStats.OracleCalls ||
				got.EngineStats.Cleaned != ref.EngineStats.Cleaned {
				t.Fatalf("procs=%d statement %d: charges differ from serial: %+v vs %+v",
					procs, i, got.EngineStats, ref.EngineStats)
			}
			if got.Clock.TotalMS() != ref.Clock.TotalMS() {
				t.Fatalf("procs=%d statement %d: simulated cost %v vs serial %v",
					procs, i, got.Clock.TotalMS(), ref.Clock.TotalMS())
			}
		}
		if res.OracleCalls >= independentCalls {
			t.Fatalf("procs=%d: coordinated script paid %d oracle calls, independent sum is %d — sharing must cut the bill",
				procs, res.OracleCalls, independentCalls)
		}
	}
}

// BenchmarkEQLScript measures the whole multi-statement pipeline —
// parse, bind, joint planning, coordinated execution — from a cold
// session each iteration, against the precomputed independent baseline.
func BenchmarkEQLScript(b *testing.B) {
	stmts := goldenStatements(b)
	independentCalls := 0
	for _, stmt := range stmts {
		r, err := eql.NewScriptSession().Exec(stmt)
		if err != nil {
			b.Fatal(err)
		}
		independentCalls += r.OracleCalls
	}
	b.ResetTimer()
	var res *eql.ScriptResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eql.NewScriptSession().Exec(goldenScript)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.OracleCalls), "oracle-calls-script")
	b.ReportMetric(float64(independentCalls), "oracle-calls-independent")
	b.ReportMetric(res.PredictedSavedMS, "predicted-saved-ms")
	b.ReportMetric(res.TotalMS, "sim-ms")
	if res.OracleCalls >= independentCalls {
		b.Fatalf("script paid %d oracle calls, independent sum is %d",
			res.OracleCalls, independentCalls)
	}
}
