package everest_test

import (
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/stream"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// streamBenchFeed builds the live-camera fixture the streaming
// benchmarks replay.
func streamBenchFeed(b *testing.B, frames int) *video.Synthetic {
	b.Helper()
	src, err := video.NewSynthetic(video.Config{
		Name: "livecam", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 33, MeanPopulation: 3, BurstRate: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return src
}

func streamBenchOptions() phase1.Options {
	return phase1.Options{
		SampleFrac: 0.1,
		MinSamples: 60,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 20}}, Epochs: 20},
		Cost:       simclock.Default(),
		Seed:       9,
	}
}

// runStream ingests the whole feed in fixed chunks and returns the
// sealed ingestor.
func runStream(b *testing.B, src video.Source, mode stream.RefreshMode, seg, chunk int) *stream.Ingestor {
	b.Helper()
	g, err := stream.NewIngestor(src, vision.CountUDF{Class: video.ClassCar}, stream.Config{
		SegmentFrames: seg,
		Refresh:       mode,
		Ingest:        streamBenchOptions(),
	})
	if err != nil {
		b.Fatal(err)
	}
	n := src.NumFrames()
	for sent := 0; sent < n; sent += chunk {
		c := chunk
		if sent+c > n {
			c = n - sent
		}
		if err := g.Append(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Seal(); err != nil {
		b.Fatal(err)
	}
	g.Close()
	return g
}

// BenchmarkStreamingIngest measures per-frame simulated ingest cost of
// a chunked live stream. The "full" variant retrains the CMDN grid at
// every segment close — bit-identical to repeated batch Index.Extend
// calls at the same boundaries (locked by the golden suite), so it IS
// the repeated-batch-Extend baseline; "warm" fine-tunes the previous
// segment's model instead. The sim-ms/frame gap is the incremental
// refresh win.
func BenchmarkStreamingIngest(b *testing.B) {
	const frames, seg, chunk = 2400, 600, 100
	for _, mode := range []struct {
		name string
		m    stream.RefreshMode
	}{{"full", stream.RefreshFull}, {"warm", stream.RefreshWarm}} {
		b.Run(mode.name, func(b *testing.B) {
			src := streamBenchFeed(b, frames)
			b.ReportAllocs()
			var simPerFrame, trainPerFrame float64
			for i := 0; i < b.N; i++ {
				g := runStream(b, src, mode.m, seg, chunk)
				simPerFrame = g.IngestMS() / float64(frames)
				trainPerFrame = g.PhaseMS(simclock.PhaseTrainCMDN) / float64(frames)
			}
			b.ReportMetric(simPerFrame, "sim-ms/frame")
			b.ReportMetric(trainPerFrame, "sim-train-ms/frame")
		})
	}
}

// BenchmarkFollowDeltas measures the continuous top-K path: a follower
// re-evaluated at every segment close over the ingestor's private label
// cache, reporting simulated Phase 2 cost per delta.
func BenchmarkFollowDeltas(b *testing.B) {
	const frames, seg, chunk = 2400, 600, 100
	src := streamBenchFeed(b, frames)
	b.ReportAllocs()
	var simPerDelta float64
	var deltas int
	for i := 0; i < b.N; i++ {
		g, err := stream.NewIngestor(src, vision.CountUDF{Class: video.ClassCar}, stream.Config{
			SegmentFrames: seg,
			Refresh:       stream.RefreshWarm,
			Ingest:        streamBenchOptions(),
		})
		if err != nil {
			b.Fatal(err)
		}
		f, err := g.Follow(stream.FollowConfig{
			Plan: engine.Plan{K: 3, Threshold: 0.9, Seed: 9, Cost: simclock.Default()},
		})
		if err != nil {
			b.Fatal(err)
		}
		for sent := 0; sent < frames; sent += chunk {
			if err := g.Append(chunk); err != nil {
				b.Fatal(err)
			}
		}
		if err := g.Seal(); err != nil {
			b.Fatal(err)
		}
		g.Close()
		var totalMS float64
		for _, d := range f.Deltas() {
			totalMS += d.QueryMS
		}
		deltas = len(f.Deltas())
		simPerDelta = totalMS / float64(deltas)
	}
	b.ReportMetric(simPerDelta, "sim-ms/delta")
	b.ReportMetric(float64(deltas), "deltas")
}
