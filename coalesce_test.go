package everest

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// TestCoalescedSharedSessionsShareOneScheduler is the cross-user
// coalescing scenario the scheduler exists for: N distinct shared
// sessions — one per user — fire the same query concurrently with
// Coalesce on. Group commit plus the shared label cache must keep the
// total oracle bill at one lone query's, whatever the interleaving,
// and every user gets the same answer.
func TestCoalescedSharedSessionsShareOneScheduler(t *testing.T) {
	labelstore.ResetForTest()
	defer labelstore.ResetForTest()
	src := testSource(t, 9000, 91)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lone, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ccfg := cfg
	ccfg.Coalesce = true
	const users = 6
	results := make([]*Result, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		sess, err := NewSharedSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			results[i], errs[i] = sess.Query(ccfg)
		}(i, sess)
	}
	wg.Wait()
	total := 0
	for i := 0; i < users; i++ {
		if errs[i] != nil {
			t.Fatalf("user %d: %v", i, errs[i])
		}
		for j := range lone.IDs {
			if results[i].IDs[j] != lone.IDs[j] || results[i].Scores[j] != lone.Scores[j] {
				t.Fatalf("user %d got a different answer", i)
			}
		}
		total += results[i].EngineStats.Cleaned
	}
	if total > lone.EngineStats.Cleaned {
		t.Fatalf("%d coalesced users cleaned %d frames total, a lone query cleans %d",
			users, total, lone.EngineStats.Cleaned)
	}
}

// TestQueryBatchPartialFailureKeepsResults is the regression lock for
// the partly-failed batch contract, in both batch modes and at both
// failure stages: whether a member fails mid-engine (a K larger than
// the relation passes plan validation but fails at execution) or at
// plan compilation (an out-of-range threshold), the successful
// members' Results must come back — a slice of len(cfgs) with nil at
// the failed slot — alongside the indexed error, matching their
// baselines, and their paid-for labels must reach the cache, so a
// follow-up query rides them oracle-free. Before the fix the
// coalesced path returned nil (or short) results on the first error,
// vanishing every paid-for member's answer.
func TestQueryBatchPartialFailureKeepsResults(t *testing.T) {
	src := testSource(t, 9000, 99)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	badExec := smallCfg(5)
	badExec.K = src.NumFrames() + 1 // valid plan shape, no relation that large
	badCompile := smallCfg(5)
	badCompile.Threshold = 2.0 // rejected by plan validation

	// Per-mode baselines for the surviving members: the independent mode
	// runs each member over a private overlay of the (empty) snapshot, so
	// cold solo queries are the reference; the coalesced mode runs them in
	// submission order over one shared overlay, so the reference is serial
	// session order (the failed member confirms nothing and drops out).
	solo := make([]*Result, 2)
	serial := make([]*Result, 2)
	serialSess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	for bi, cfg := range []Config{smallCfg(5), smallCfg(3)} {
		if solo[bi], err = ix.Query(src, udf, cfg); err != nil {
			t.Fatal(err)
		}
		if serial[bi], err = serialSess.Query(cfg); err != nil {
			t.Fatal(err)
		}
	}

	for _, tc := range []struct {
		stage string
		bad   Config
	}{
		{"execute-fail", badExec},
		{"compile-fail", badCompile},
	} {
		for _, coalesce := range []bool{false, true} {
			mode := tc.stage + "/independent"
			baselines := solo
			if coalesce {
				mode = tc.stage + "/coalesced"
				baselines = serial
			}
			sess, err := NewSession(ix, src, udf)
			if err != nil {
				t.Fatal(err)
			}
			cfgs := []Config{smallCfg(5), tc.bad, smallCfg(3)}
			for i := range cfgs {
				cfgs[i].Coalesce = coalesce
			}
			results, err := sess.QueryBatch(cfgs)
			if err == nil {
				t.Fatalf("%s: bad member must surface an error", mode)
			}
			if len(results) != len(cfgs) {
				t.Fatalf("%s: got %d results for %d queries", mode, len(results), len(cfgs))
			}
			if results[1] != nil {
				t.Fatalf("%s: failed member produced a result", mode)
			}
			for bi, i := range []int{0, 2} {
				if results[i] == nil {
					t.Fatalf("%s: successful member %d's result vanished with its neighbour's error", mode, i)
				}
				want := baselines[bi]
				if !reflect.DeepEqual(results[i].IDs, want.IDs) || !reflect.DeepEqual(results[i].Scores, want.Scores) {
					t.Fatalf("%s: surviving member %d's answer diverged from its baseline", mode, i)
				}
			}
			// The survivors' labels were published: a repeat of member 0's
			// query is oracle-free.
			repeat, err := sess.Query(cfgs[0])
			if err != nil {
				t.Fatal(err)
			}
			if repeat.EngineStats.Cleaned != 0 {
				t.Fatalf("%s: survivors' labels were not published — repeat cleaned %d frames", mode, repeat.EngineStats.Cleaned)
			}
		}
	}
}

// TestSharedSessionsConflictingPolicies locks the strictest-wins
// policy contract on a shared cache: sibling sessions installing
// conflicting eviction knobs resolve to the pairwise minimum — the
// most recent session can neither loosen a sibling's bound with a
// bigger value nor erase it by leaving the knob zero (the
// last-writer-wins overwrite this is a regression test for).
func TestSharedSessionsConflictingPolicies(t *testing.T) {
	labelstore.ResetForTest()
	defer labelstore.ResetForTest()
	src := testSource(t, 9000, 101)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSharedSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharedSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	// Session A asks for a TTL and a generous label cap; session B asks
	// for a tight cap and no TTL.
	acfg := smallCfg(5)
	acfg.CacheTTL = time.Hour
	acfg.CacheMaxLabels = 1000
	if _, err := a.Query(acfg); err != nil {
		t.Fatal(err)
	}
	bcfg := smallCfg(5)
	bcfg.Threshold = 0.99
	bcfg.CacheMaxLabels = 1
	if _, err := b.Query(bcfg); err != nil {
		t.Fatal(err)
	}
	// Effective policy is the pairwise strictest: B's cap of 1 holds, and
	// A's TTL survived B's zero-TTL install. (TightenPolicy with a zero
	// policy is a read — it merges nothing.)
	got := a.cache.TightenPolicy(labelstore.Policy{})
	want := labelstore.Policy{TTL: time.Hour, MaxLabels: 1}
	if got != want {
		t.Fatalf("conflicting installs resolved to %+v, want strictest-wins %+v", got, want)
	}
	// And the strict cap is live: the cache kept only the newest batch.
	third := smallCfg(3)
	third.Threshold = 0.95
	res, err := a.Query(third)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineStats.Cleaned > 0 && a.CachedLabels() > res.EngineStats.Cleaned {
		t.Fatalf("cache holds %d labels under a cap of 1 batch (newest cleaned %d) — the sibling's cap was lost",
			a.CachedLabels(), res.EngineStats.Cleaned)
	}
	// A re-install with looser knobs does not loosen.
	if _, err := a.Query(acfg); err != nil {
		t.Fatal(err)
	}
	if got := a.cache.TightenPolicy(labelstore.Policy{}); got != want {
		t.Fatalf("a later generous install loosened the policy to %+v, want %+v kept", got, want)
	}
	// The explicit escape hatch: a negative knob clears the whole policy
	// first, and a positive knob in the same Config installs into the
	// cleared state — the one way to loosen a shared bound.
	loosen := smallCfg(5)
	loosen.CacheTTL = -1
	loosen.CacheMaxLabels = 400
	if _, err := b.Query(loosen); err != nil {
		t.Fatal(err)
	}
	if got, want := a.cache.TightenPolicy(labelstore.Policy{}), (labelstore.Policy{MaxLabels: 400}); got != want {
		t.Fatalf("reset-and-reinstall yielded %+v, want %+v (TTL cleared, fresh cap installed)", got, want)
	}
}

// TestSessionCacheMaxLabelsPolicy checks the Config.CacheMaxLabels
// knob threads through to the label cache: the cache stays bounded,
// evictions advance the version, and queries after eviction simply
// re-pay the oracle for what was dropped — same answer.
func TestSessionCacheMaxLabelsPolicy(t *testing.T) {
	src := testSource(t, 9000, 93)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.CacheMaxLabels = 1
	first, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EngineStats.Cleaned == 0 {
		t.Fatal("first query cleaned nothing; the eviction assertions would be vacuous")
	}
	// One batch is always kept (the newest), so the cache holds the first
	// query's labels for now.
	if sess.CachedLabels() != first.EngineStats.Cleaned {
		t.Fatalf("cache holds %d labels, first query cleaned %d", sess.CachedLabels(), first.EngineStats.Cleaned)
	}
	// A different query publishes a second batch, which evicts the first.
	bigger := smallCfg(5)
	bigger.Threshold = 0.99
	bigger.CacheMaxLabels = 1
	vBefore := sess.CacheVersion()
	if _, err := sess.Query(bigger); err != nil {
		t.Fatal(err)
	}
	if sess.CachedLabels() >= first.EngineStats.Cleaned+1 {
		t.Fatalf("cache grew to %d labels despite CacheMaxLabels=1", sess.CachedLabels())
	}
	if sess.CacheVersion() < vBefore+2 {
		t.Fatalf("eviction did not bump the version: %d → %d", vBefore, sess.CacheVersion())
	}
	// The evicted frames are re-charged, and the answer is unchanged.
	again, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.IDs {
		if first.IDs[i] != again.IDs[i] || first.Scores[i] != again.Scores[i] {
			t.Fatalf("answer changed after eviction at %d", i)
		}
	}
}

// TestSessionCacheTTLPolicy exercises the Config.CacheTTL knob through
// the public API: a TTL generous enough for the test's duration keeps
// every label (no spurious eviction on the hot path).
func TestSessionCacheTTLPolicy(t *testing.T) {
	src := testSource(t, 9000, 97)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.CacheTTL = time.Hour
	first, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.EngineStats.Cleaned != 0 {
		t.Fatalf("repeat within the TTL cleaned %d frames, want 0", repeat.EngineStats.Cleaned)
	}
	if sess.CachedLabels() != first.EngineStats.Cleaned {
		t.Fatalf("TTL policy lost labels: %d vs %d", sess.CachedLabels(), first.EngineStats.Cleaned)
	}
}
