package everest

import (
	"sync"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// TestCoalescedSharedSessionsShareOneScheduler is the cross-user
// coalescing scenario the scheduler exists for: N distinct shared
// sessions — one per user — fire the same query concurrently with
// Coalesce on. Group commit plus the shared label cache must keep the
// total oracle bill at one lone query's, whatever the interleaving,
// and every user gets the same answer.
func TestCoalescedSharedSessionsShareOneScheduler(t *testing.T) {
	labelstore.ResetForTest()
	defer labelstore.ResetForTest()
	src := testSource(t, 9000, 91)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lone, err := ix.Query(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ccfg := cfg
	ccfg.Coalesce = true
	const users = 6
	results := make([]*Result, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		sess, err := NewSharedSession(ix, src, udf)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			results[i], errs[i] = sess.Query(ccfg)
		}(i, sess)
	}
	wg.Wait()
	total := 0
	for i := 0; i < users; i++ {
		if errs[i] != nil {
			t.Fatalf("user %d: %v", i, errs[i])
		}
		for j := range lone.IDs {
			if results[i].IDs[j] != lone.IDs[j] || results[i].Scores[j] != lone.Scores[j] {
				t.Fatalf("user %d got a different answer", i)
			}
		}
		total += results[i].EngineStats.Cleaned
	}
	if total > lone.EngineStats.Cleaned {
		t.Fatalf("%d coalesced users cleaned %d frames total, a lone query cleans %d",
			users, total, lone.EngineStats.Cleaned)
	}
}

// TestSessionCacheMaxLabelsPolicy checks the Config.CacheMaxLabels
// knob threads through to the label cache: the cache stays bounded,
// evictions advance the version, and queries after eviction simply
// re-pay the oracle for what was dropped — same answer.
func TestSessionCacheMaxLabelsPolicy(t *testing.T) {
	src := testSource(t, 9000, 93)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.CacheMaxLabels = 1
	first, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EngineStats.Cleaned == 0 {
		t.Fatal("first query cleaned nothing; the eviction assertions would be vacuous")
	}
	// One batch is always kept (the newest), so the cache holds the first
	// query's labels for now.
	if sess.CachedLabels() != first.EngineStats.Cleaned {
		t.Fatalf("cache holds %d labels, first query cleaned %d", sess.CachedLabels(), first.EngineStats.Cleaned)
	}
	// A different query publishes a second batch, which evicts the first.
	bigger := smallCfg(5)
	bigger.Threshold = 0.99
	bigger.CacheMaxLabels = 1
	vBefore := sess.CacheVersion()
	if _, err := sess.Query(bigger); err != nil {
		t.Fatal(err)
	}
	if sess.CachedLabels() >= first.EngineStats.Cleaned+1 {
		t.Fatalf("cache grew to %d labels despite CacheMaxLabels=1", sess.CachedLabels())
	}
	if sess.CacheVersion() < vBefore+2 {
		t.Fatalf("eviction did not bump the version: %d → %d", vBefore, sess.CacheVersion())
	}
	// The evicted frames are re-charged, and the answer is unchanged.
	again, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.IDs {
		if first.IDs[i] != again.IDs[i] || first.Scores[i] != again.Scores[i] {
			t.Fatalf("answer changed after eviction at %d", i)
		}
	}
}

// TestSessionCacheTTLPolicy exercises the Config.CacheTTL knob through
// the public API: a TTL generous enough for the test's duration keeps
// every label (no spurious eviction on the hot path).
func TestSessionCacheTTLPolicy(t *testing.T) {
	src := testSource(t, 9000, 97)
	udf := vision.CountUDF{Class: video.ClassCar}
	ix, err := BuildIndex(src, udf, smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, src, udf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.CacheTTL = time.Hour
	first, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.EngineStats.Cleaned != 0 {
		t.Fatalf("repeat within the TTL cleaned %d frames, want 0", repeat.EngineStats.Cleaned)
	}
	if sess.CachedLabels() != first.EngineStats.Cleaned {
		t.Fatalf("TTL policy lost labels: %d vs %d", sess.CachedLabels(), first.EngineStats.Cleaned)
	}
}
