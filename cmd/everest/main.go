// Command everest runs a single Top-K or Top-K-window query against one of
// the built-in synthetic datasets and prints the guaranteed result with
// its simulated cost breakdown.
//
// Usage:
//
//	everest -dataset Taipei-bus -k 50 -thres 0.9
//	everest -dataset Archie -k 10 -window 30
//	everest -dataset Archie -k 10 -window 300 -stride 30   # sliding windows
//	everest -dataset Archie -k 50 -parallel 4              # scale-out
//	everest -dataset Archie -k 10 -concurrent 8            # concurrent serving from one session
//	everest -dataset Archie -k 10 -concurrent 8 -coalesce  # one coalesced engine run for all 8
//	everest -dataset Archie -k 10 -concurrent 8 -coalesce -coalesce-wait 50ms  # hold groups open for late arrivals
//	everest -dataset Archie -k 10 -concurrent 8 -shared -mux  # one oracle dispatch queue across sessions
//	everest -dataset Archie -k 10 -deadline 50000 -degraded-ok  # bounded: best-effort answer if the simulated budget expires
//	everest -dataset Archie -k 10 -chaos 'err:3' -retries 5     # inject transient oracle faults, retry through them
//	everest -dataset Archie -k 10 -concurrent 4 -chaos 'err:2,slow:5:250' -retries 3 -degraded-ok
//	everest -dataset Archie -k 10 -follow                      # live camera: chunked ingest, continuous top-K deltas
//	everest -dataset Archie -k 10 -follow -chunk 150 -segment 900 -lag 4  # tighter staleness bound, faster model refresh
//	everest -dataset Dashcam-California -udf tailgate -k 50
//	everest -query 'SELECT TOP 10 WINDOWS OF 300 EVERY 30 FROM Archie RANK BY count(car)' [-explain]
//	everest -query 'EXPLAIN ANALYZE SELECT TOP 10 FRAMES FROM Archie RANK BY count(car)'  # cost-based planner chooses the knobs, runs the plan, reports predicted vs actual
//	everest -query 'SELECT TOP 5 FRAMES FROM Archie RANK BY count(car); SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car)'  # script: shared sub-plans, one budget
//	everest -script queries.eql                            # run a ';'-separated statement file on one shared session
//	everest -script queries.eql -explain                   # whole-script plan: units, shared relations, one-budget cost table
//	everest -repl
//	everest -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/eql"
	"github.com/everest-project/everest/internal/faultinject"
	"github.com/everest-project/everest/internal/oraclemux"
	"github.com/everest-project/everest/internal/repl"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	var (
		dataset      = flag.String("dataset", "Archie", "dataset name (see -list)")
		k            = flag.Int("k", 50, "result size K")
		thres        = flag.Float64("thres", 0.9, "probabilistic guarantee threshold")
		window       = flag.Int("window", 0, "window size in frames (0 = frame query)")
		stride       = flag.Int("stride", 0, "window stride in frames (0 = tumbling; < window slides with the union bound)")
		workers      = flag.Int("parallel", 1, "scale-out worker count")
		frames       = flag.Int("frames", 0, "override frame count (0 = dataset default)")
		udfName      = flag.String("udf", "count", "scoring UDF: count | tailgate | sentiment")
		seed         = flag.Uint64("seed", 1, "random seed")
		procs        = flag.Int("procs", 0, "CPU workers for the execution engine (0 = all cores; results are identical for any value)")
		conc         = flag.Int("concurrent", 0, "serve the query N times concurrently from one shared session (builds or loads an index first)")
		shared       = flag.Bool("shared", false, "with -concurrent: serve from N distinct sessions joined to the process-wide (video, UDF) label cache instead of one private session")
		admit        = flag.Int("admit", 0, "admission control: cap on concurrent oracle-heavy query batches per label cache (0 = no cap)")
		coalesce     = flag.Bool("coalesce", false, "with -concurrent: route queries through the cross-query coalescing scheduler (one engine run per compatible group; overlapping frames labeled and charged once)")
		coalesceWait = flag.Duration("coalesce-wait", 0, "with -coalesce: latency budget for the group close — the leader holds a group open up to this long so compatible arrivals join one engine run (0 = commit immediately; results never change)")
		mux          = flag.Bool("mux", false, "route Phase 2 oracle confirmation batches through the process-wide oracle multiplexer: in-flight batches from all runs consolidate into device batches (fewer simulated launches; results and per-query charges unchanged)")
		deadline     = flag.Float64("deadline", 0, "simulated deadline budget per query in ms (0 = none); an expired deadline fails the query unless -degraded-ok")
		retries      = flag.Int("retries", 0, "retries per transient oracle failure before the query fails (capped exponential simulated backoff)")
		retryBackoff = flag.Float64("retry-backoff", 0, "initial simulated retry backoff in ms, doubling per attempt up to 32x the base (0 with -retries = 100)")
		degradedOK   = flag.Bool("degraded-ok", false, "permit explicitly marked best-effort answers when the oracle stays down past the retry budget or the deadline expires")
		chaos        = flag.String("chaos", "", "fault-injection schedule on the oracle dispatch path: comma-separated [start@]kind[:count][:ms][~prob] items, kind err|panic|slow (e.g. 'err:3,5@panic,slow:10:250'); deterministic per -seed")
		list         = flag.Bool("list", false, "list datasets and exit")
		query        = flag.String("query", "", `EQL statement or ';'-separated script, e.g. 'SELECT TOP 50 FRAMES FROM "Taipei-bus" RANK BY count(car) THRESHOLD 0.9'`)
		script       = flag.String("script", "", "run an EQL statement file (';'-separated statements) as one coordinated script on a shared session")
		explain      = flag.Bool("explain", false, "describe the EQL query's (or script's) plan without running it")
		shell        = flag.Bool("repl", false, "interactive EQL shell (ingest-once, session-shared queries)")
		saveIx       = flag.String("saveindex", "", "run Phase 1 only and save an ingestion index to this file (atomic write, checksummed format)")
		useIx        = flag.String("useindex", "", "answer from a saved ingestion index (Phase 2 only)")
		durableDir   = flag.String("durable-dir", "", "make the serving label cache crash-safe: log every published label to a checksummed WAL with atomic checkpoints in this directory, and recover the surviving labels on start (the query is then served from a shared session)")
		follow       = flag.Bool("follow", false, "live-camera mode: replay the dataset as a chunked feed, ingest incrementally, and print continuous top-K answer deltas as segments close")
		chunk        = flag.Int("chunk", 300, "with -follow: frames per arriving chunk (300 = 10 s at 30 fps)")
		segment      = flag.Int("segment", 1800, "with -follow: frames per index segment — the model-refresh and answer-update granularity")
		lag          = flag.Int("lag", 0, "with -follow: staleness bound in chunks — close the open segment early once the answer falls this many chunks behind the frontier (0 = update at segment closes only)")
		coldStart    = flag.Bool("cold", false, "with -follow: retrain the full CMDN grid at every segment close instead of warm-refreshing the previous segment's model")
		drift        = flag.Float64("drift", 0, "with -follow: warm-refresh drift tolerance in holdout NLL (0 = default 0.5); raise for feeds whose score distribution cycles")
	)
	flag.Parse()

	if *shell {
		if err := repl.New(os.Stdout).Run(os.Stdin); err != nil {
			fatal(err)
		}
		return
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		runScript(string(data), *explain)
		return
	}

	if *query != "" {
		sc, err := eql.ParseScript(*query)
		if err != nil {
			fatal(err)
		}
		if len(sc.Statements) == 1 {
			q := sc.Statements[0]
			single := !q.Stream && len(q.Sources) == 1 && len(q.Predicates) == 1
			if q.Analyze {
				rep, err := eql.Analyze(*query)
				if err != nil {
					fatal(err)
				}
				fmt.Print(rep.String())
				return
			}
			if single && (q.Explain || *explain) {
				out, err := eql.Explain(*query)
				if err != nil {
					fatal(err)
				}
				fmt.Print(out)
				return
			}
			if single && !q.Explain {
				res, plan, err := eql.Execute(*query)
				if err != nil {
					fatal(err)
				}
				printResult(res, plan.Source.FPS(), *query)
				return
			}
		}
		// Scripts and multi-unit statements run as one coordinated plan
		// graph on a shared script session.
		runScript(*query, *explain)
		return
	}

	if *list {
		fmt.Printf("%-22s %-8s %12s %8s\n", "name", "object", "paper-frames", "hours")
		for _, d := range video.Datasets() {
			fmt.Printf("%-22s %-8s %12d %8.1f\n", d.Name, d.Config.Class, d.PaperFrames, d.PaperHours)
		}
		return
	}

	spec, err := video.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	src, err := spec.Build(*frames)
	if err != nil {
		fatal(err)
	}

	var udf vision.UDF
	switch *udfName {
	case "count":
		udf = vision.CountUDF{Class: src.TargetClass()}
	case "tailgate":
		udf = vision.TailgateUDF{}
	case "sentiment":
		udf = vision.SentimentUDF{}
	default:
		fatal(fmt.Errorf("unknown UDF %q", *udfName))
	}

	// -chaos wraps the UDF's dispatch boundary with a deterministic fault
	// schedule. Phase 1 ingestion is untouched (injection fires on the
	// serving-path TryScore contract only), so the same index serves
	// faulted and clean queries.
	var chaosUDF *faultinject.UDF
	if *chaos != "" {
		sched, err := faultinject.Parse(*chaos)
		if err != nil {
			fatal(err)
		}
		chaosUDF = faultinject.WrapUDF(udf, sched, *seed)
		udf = chaosUDF
	}

	cfg := everest.Config{
		K:              *k,
		Threshold:      *thres,
		Window:         *window,
		Stride:         *stride,
		Seed:           *seed,
		Procs:          *procs,
		AdmissionLimit: *admit,
		Coalesce:       *coalesce,
		CoalesceWait:   *coalesceWait,
		UseMux:         *mux,
		DeadlineMS:     *deadline,
		Retries:        *retries,
		RetryBackoffMS: *retryBackoff,
		DegradedOK:     *degradedOK,
		DurableDir:     *durableDir,
	}

	if *follow {
		if err := runFollow(src, udf, cfg, *segment, *chunk, *lag, !*coldStart, *drift); err != nil {
			fatal(err)
		}
		return
	}

	if *saveIx != "" {
		ix, err := everest.BuildIndex(src, udf, cfg)
		if err != nil {
			fatal(err)
		}
		if err := ix.SaveFile(*saveIx); err != nil {
			fatal(err)
		}
		fmt.Printf("index for %s / %s written to %s (ingest cost %.0f sim-ms, %d retained frames)\n",
			ix.Dataset(), ix.UDFName(), *saveIx, ix.IngestMS(), ix.Info().Retained)
		return
	}

	fmt.Printf("everest: Top-%d over %s (%d frames, %d fps), UDF %s, thres %.2f",
		*k, src.Name(), src.NumFrames(), src.FPS(), udf.Name(), *thres)
	if *window > 0 {
		fmt.Printf(", window %d frames", *window)
	}
	fmt.Println()

	if *conc > 0 {
		if err := runConcurrent(src, udf, cfg, *useIx, *conc, *shared); err != nil {
			fatal(err)
		}
		maybePrintMuxStats(*mux)
		maybePrintChaosStats(chaosUDF)
		return
	}

	if *durableDir != "" {
		res, err := runDurable(src, udf, cfg, *useIx, *durableDir)
		if err != nil {
			fatal(err)
		}
		printResult(res, src.FPS(), "")
		maybePrintMuxStats(*mux)
		maybePrintChaosStats(chaosUDF)
		return
	}

	var res *everest.Result
	if *useIx != "" {
		ix, err := everest.LoadFile(*useIx)
		if err != nil {
			fatal(err)
		}
		res, err = ix.Query(src, udf, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(served from index %s; ingest cost %.0f sim-ms amortized)\n", *useIx, ix.IngestMS())
	} else if *workers > 1 {
		pres, err := everest.RunParallel(src, udf, cfg, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(scale-out: %d workers; phase 1 bill %.0f sim-ms, BSP wall below)\n",
			pres.Workers, pres.WorkerSumMS)
		res = &pres.Result
	} else {
		var err error
		res, err = everest.Run(src, udf, cfg)
		if err != nil {
			fatal(err)
		}
	}

	printResult(res, src.FPS(), "")
	maybePrintMuxStats(*mux)
	maybePrintChaosStats(chaosUDF)
}

// runFollow replays the dataset as a live camera: frames arrive in
// fixed-size chunks, Phase 1 runs incrementally as they land, and the
// query's top-K answer is kept continuously updated — each segment
// close prints how the answer changed rather than a from-scratch
// result.
func runFollow(src video.Source, udf vision.UDF, cfg everest.Config, segment, chunk, lag int, warm bool, drift float64) error {
	fps := src.FPS()
	mode := "warm CMDN refresh (auto drift fallback)"
	if !warm {
		mode = "full CMDN retrain per segment"
	}
	fmt.Printf("live follow: top-%d over %s, %d-frame chunks, %d-frame segments, %s\n\n",
		cfg.K, src.Name(), chunk, segment, mode)
	ls, err := everest.OpenLive(src, udf, cfg, everest.LiveConfig{
		SegmentFrames: segment,
		Warm:          warm,
		MaxLagChunks:  lag,
		DriftNLL:      drift,
		OnDelta:       func(d everest.LiveDelta) { printDelta(d, fps) },
	})
	if err != nil {
		return err
	}
	defer ls.Close()

	n := src.NumFrames()
	for sent := 0; sent < n; sent += chunk {
		c := chunk
		if sent+c > n {
			c = n - sent
		}
		if err := ls.Append(c); err != nil {
			return err
		}
	}
	if err := ls.Seal(); err != nil {
		return err
	}

	st := ls.Stats()
	fmt.Printf("\nfeed sealed at frame %d: %d chunks, %d segments (%d warm refreshes, %d full trains, %d drift fallbacks), %d eager labels, %d answer updates\n",
		ls.Frontier(), st.Chunks, st.Segments, st.WarmRefreshes, st.FullTrains, st.DriftFallbacks, st.EagerLabels, st.Deltas)
	if st.ForcedCloses > 0 {
		fmt.Printf("staleness bound forced %d early segment closes\n", st.ForcedCloses)
	}
	fmt.Printf("ingest cost %.0f sim-ms (%.2f sim-ms/frame amortized)\n",
		ls.IngestMS(), ls.IngestMS()/float64(ls.Frontier()))
	if a := ls.Answer(); a != nil {
		fmt.Printf("\nconverged answer (confidence %.4f):\n", a.Confidence)
		for i, id := range a.IDs {
			fmt.Printf("  #%-3d frame %-8d t=%8.1fs  score %.2f\n",
				i+1, id, float64(id)/float64(fps), a.Scores[i])
		}
	}
	return nil
}

// printDelta renders one continuous-query update: what changed, then
// the full answer it leaves behind.
func printDelta(d everest.LiveDelta, fps int) {
	fmt.Printf("t=%7.1fs  answer #%d", float64(d.Frontier)/float64(fps), d.Seq)
	switch {
	case d.Seq == 0:
		fmt.Printf("  initial top-%d", len(d.IDs))
	case len(d.Entered)+len(d.Left)+len(d.Reordered) == 0:
		fmt.Printf("  unchanged")
	default:
		if len(d.Entered) > 0 {
			fmt.Printf("  +%v", d.Entered)
		}
		if len(d.Left) > 0 {
			fmt.Printf("  -%v", d.Left)
		}
		if len(d.Reordered) > 0 {
			fmt.Printf("  ~%v", d.Reordered)
		}
	}
	fmt.Printf("  (confidence %.4f, %.0f sim-ms)\n", d.Confidence, d.QueryMS)
	for i, id := range d.IDs {
		fmt.Printf("    #%-3d frame %-8d score %.2f\n", i+1, id, d.Scores[i])
	}
}

// maybePrintChaosStats reports what the -chaos fault injector actually
// did — the ground truth the per-query retry/degraded counters are read
// against.
func maybePrintChaosStats(u *faultinject.UDF) {
	if u == nil {
		return
	}
	st := u.Stats()
	fmt.Printf("\nchaos: %d oracle dispatches saw %d transient errors, %d panics, %d latency spikes (+%.0f sim-ms)\n",
		st.Calls, st.Transients, st.Panics, st.Slow, st.SpikeMS)
}

// printServingStats consolidates the fault-layer counters of a multi-
// query run: retries attempted, simulated backoff charged, and how many
// queries returned explicitly degraded answers.
func printServingStats(results []*everest.Result) {
	retries, degraded := 0, 0
	backoffMS := 0.0
	for _, r := range results {
		if r == nil {
			continue
		}
		retries += r.Retries
		backoffMS += r.RetryBackoffMS
		if r.Degraded != nil {
			degraded++
		}
	}
	if retries == 0 && degraded == 0 {
		return
	}
	fmt.Printf("\nfault layer: %d retries attempted (%.0f sim-ms simulated backoff), %d degraded queries\n",
		retries, backoffMS, degraded)
}

// maybePrintMuxStats reports the process-wide oracle multiplexer's
// device-side consolidation after a -mux run. Per-query results and
// simulated charges are unaffected by the mux; this is the device
// accounting — how many plan-level confirmation batches shared a
// launch.
func maybePrintMuxStats(enabled bool) {
	if !enabled {
		return
	}
	st := oraclemux.Shared().Stats()
	if st.Launches == 0 {
		fmt.Println("\noracle mux: no confirmation batches dispatched")
		return
	}
	fmt.Printf("\noracle mux: %d confirmation batches in %d device launches (%.2fx consolidation), %d frames scored, %.0f sim-ms launch overhead saved\n",
		st.Requests, st.Launches, float64(st.Requests)/float64(st.Launches), st.Frames, st.SavedMS)
}

// runConcurrent answers the same query n times at once: from one
// private session by default, or — with shared — from n distinct
// sessions all joined to the process-wide (video, UDF) label cache, the
// many-users serving scenario. A saved index is used when path is
// non-empty, otherwise Phase 1 runs once up front. In both modes the
// answers pay the oracle bill of roughly a single query: the private
// session batches over one snapshot (bit-identical answers), the shared
// sessions reuse each other's published labels.
func runConcurrent(src video.Source, udf vision.UDF, cfg everest.Config, path string, n int, shared bool) error {
	ix, err := loadOrBuildIndex(src, udf, cfg, path)
	if err != nil {
		return err
	}
	if shared {
		return runShared(src, udf, cfg, ix, n)
	}
	sess, err := everest.NewSession(ix, src, udf)
	if err != nil {
		return err
	}
	results, err := sess.RunConcurrent(cfg, n)
	if err != nil {
		return err
	}
	mode := "one session"
	if cfg.Coalesce {
		mode = "one session, coalesced into one engine run"
	}
	fmt.Printf("\n%d concurrent queries served from %s (cache now %d labels):\n",
		n, mode, sess.CachedLabels())
	for i, r := range results {
		fmt.Printf("  query %-3d confidence %.4f, cleaned %d, %.0f sim-ms\n",
			i, r.Confidence, r.EngineStats.Cleaned, r.Clock.TotalMS())
	}
	printServingStats(results)
	fmt.Printf("\nfirst answer (all %d are bit-identical):\n", n)
	printResult(results[0], src.FPS(), "")
	return nil
}

// loadOrBuildIndex serves the session paths: a saved index is loaded
// when path is non-empty, otherwise Phase 1 runs once up front.
func loadOrBuildIndex(src video.Source, udf vision.UDF, cfg everest.Config, path string) (*everest.Index, error) {
	if path != "" {
		ix, err := everest.LoadFile(path)
		if err != nil {
			return nil, err
		}
		fmt.Printf("(serving from index %s; ingest cost %.0f sim-ms amortized)\n", path, ix.IngestMS())
		return ix, nil
	}
	ix, err := everest.BuildIndex(src, udf, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("(phase 1 ingested once: %.0f sim-ms, %d retained frames)\n", ix.IngestMS(), ix.Info().Retained)
	return ix, nil
}

// runDurable serves one query from a shared session whose label cache
// is crash-safe in dir: labels recovered from a previous process are
// reported and reused (they enter the query oracle-free), and the
// labels this query confirms are logged before it returns — a restart
// with the same -durable-dir picks them up.
func runDurable(src video.Source, udf vision.UDF, cfg everest.Config, path, dir string) (*everest.Result, error) {
	ix, err := loadOrBuildIndex(src, udf, cfg, path)
	if err != nil {
		return nil, err
	}
	sess, err := everest.NewSharedSession(ix, src, udf)
	if err != nil {
		return nil, err
	}
	if err := sess.EnableDurable(dir); err != nil {
		return nil, err
	}
	fmt.Printf("(durable label cache in %s: recovered %d labels at version %d)\n",
		dir, sess.CachedLabels(), sess.CacheVersion())
	res, err := sess.Query(cfg)
	if err != nil {
		return nil, err
	}
	if derr := sess.DurableErr(); derr != nil {
		fmt.Printf("WARNING: durable log failed mid-run; serving continued from RAM: %v\n", derr)
	}
	fmt.Printf("(cache now %d labels at version %d; the WAL in %s survives restarts)\n",
		sess.CachedLabels(), sess.CacheVersion(), dir)
	return res, nil
}

// runShared serves the query from n distinct shared sessions launched
// concurrently — the "n users, one video" scenario. Sessions reuse each
// other's published labels through the process-wide cache; how much is
// reused depends on in-flight overlap: free-running sessions that start
// together all pay the oracle (the cache shares *completed* work), while
// -admit caps how many are in flight, so with -admit 1 the first session
// pays and the rest serve oracle-free — and -coalesce batches in-flight
// queries into one engine run on the pair's scheduler, so even
// simultaneous starters share labels and the group pays roughly one
// query's bill. Per-session numbers depend on arrival order; each
// individual answer is still the deterministic function of the cache
// version (or coalesced group position) it got.
func runShared(src video.Source, udf vision.UDF, cfg everest.Config, ix *everest.Index, n int) error {
	results := make([]*everest.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var last *everest.Session
	for i := 0; i < n; i++ {
		sess, err := everest.NewSharedSession(ix, src, udf)
		if err != nil {
			return err
		}
		last = sess
		wg.Add(1)
		go func(i int, sess *everest.Session) {
			defer wg.Done()
			results[i], errs[i] = sess.Query(cfg)
		}(i, sess)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	totalCleaned := 0
	paid := 0
	lone := 0 // what one cold-cache query pays: the biggest single bill
	for _, r := range results {
		totalCleaned += r.EngineStats.Cleaned
		if r.EngineStats.Cleaned > 0 {
			paid++
		}
		if r.EngineStats.Cleaned > lone {
			lone = r.EngineStats.Cleaned
		}
	}
	admitNote := "no admission cap"
	if cfg.AdmissionLimit > 0 {
		admitNote = fmt.Sprintf("admission cap %d", cfg.AdmissionLimit)
	}
	if cfg.Coalesce {
		admitNote += ", coalescing scheduler"
	}
	fmt.Printf("\n%d concurrent user sessions over one process-wide cache (%s; cache now %d labels, version %d):\n",
		n, admitNote, last.CachedLabels(), last.CacheVersion())
	for i, r := range results {
		fmt.Printf("  session %-3d confidence %.4f, cleaned %d, %.0f sim-ms\n",
			i, r.Confidence, r.EngineStats.Cleaned, r.Clock.TotalMS())
	}
	fmt.Printf("\n%d of %d sessions paid the oracle; %d confirmations total (a lone cold-cache query pays %d)\n",
		paid, n, totalCleaned, lone)
	printServingStats(results)
	fmt.Printf("\nfirst answer:\n")
	printResult(results[0], src.FPS(), "")
	return nil
}

func printResult(res *everest.Result, fps int, query string) {
	unit := "frame"
	if res.IsWindow {
		unit = "window"
	}
	if query != "" {
		fmt.Printf("query: %s\n", query)
	}
	if res.Degraded != nil {
		fmt.Printf("\nDEGRADED result (%s; %d of %d entries unconfirmed proxy estimates; %.0f sim-ms spent):\n",
			res.Degraded.Reason, len(res.Degraded.Unconfirmed), len(res.IDs), res.Degraded.SpentMS)
	}
	fmt.Printf("\nresult (confidence %.4f):\n", res.Confidence)
	for i, id := range res.IDs {
		sec := float64(id) / float64(fps)
		if res.IsWindow {
			sec = float64(id*res.WindowStride) / float64(fps)
		}
		fmt.Printf("  #%-3d %s %-8d t=%8.1fs  score %.2f\n", i+1, unit, id, sec, res.Scores[i])
	}
	fmt.Printf("\nphase 1: %d+%d oracle-labelled samples, %d/%d frames retained, CMDN g=%d h=%d (holdout NLL %.3f)\n",
		res.Phase1.TrainSamples, res.Phase1.HoldoutSamples,
		res.Phase1.Retained, res.Phase1.TotalFrames,
		res.Phase1.Hyper.G, res.Phase1.Hyper.H, res.Phase1.HoldoutNLL)
	fmt.Printf("phase 2: %d iterations, %d tuples confirmed by the oracle\n",
		res.EngineStats.Iterations, res.EngineStats.Cleaned)
	if res.Retries > 0 {
		fmt.Printf("fault layer: %d transient oracle failures retried (+%.0f sim-ms simulated backoff)\n",
			res.Retries, res.RetryBackoffMS)
	}
	fmt.Printf("\nsimulated cost:\n%s", res.Clock)
}

// runScript executes (or, with explainOnly, describes) an EQL script on
// one shared script session: statements over the same (dataset, frames,
// UDF, seed) share one ingestion and one label cache under a single
// serving budget, bit-identical to running them one at a time in order.
func runScript(src string, explainOnly bool) {
	if explainOnly {
		out, err := eql.ExplainScript(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	if err := repl.New(os.Stdout).ExecLine(src); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "everest:", err)
	os.Exit(1)
}
