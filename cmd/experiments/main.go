// Command experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the ablation studies listed in DESIGN.md, printing
// the same rows/series the paper reports.
//
// Usage:
//
//	experiments                  # run everything at the default scale
//	experiments -exp fig4,table8 # run a subset
//	experiments -frames 20000    # override per-dataset frame counts
//	experiments -fullgrid        # train the paper's full 12-point CMDN grid
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/everest-project/everest/internal/harness"
)

func main() {
	var (
		expList  = flag.String("exp", "fig4,lambda,table8,fig5,fig6,fig7,fig8,fig9,ingest,ablations,scaleout,session,sliding", "comma-separated experiments")
		frames   = flag.Int("frames", 0, "frames per dataset (0 = dataset default, capped)")
		cap      = flag.Int("cap", 60000, "per-dataset frame cap")
		k        = flag.Int("k", 50, "default K")
		thres    = flag.Float64("thres", 0.9, "default threshold")
		seed     = flag.Uint64("seed", 1, "random seed")
		fullGrid = flag.Bool("fullgrid", false, "train the paper's full 12-point CMDN grid")
	)
	flag.Parse()

	scale := harness.Scale{Frames: *frames, FramesCap: *cap, Seed: *seed, FullGrid: *fullGrid}
	out := os.Stdout
	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(e)] = true
	}

	run := func(name string, fn func() error) {
		if !want[name] && !want["all"] {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "(%s completed in %s wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig4", func() error {
		rows, err := harness.Fig4(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteSystemRows(out, fmt.Sprintf("Fig. 4: overall comparison (Top-%d, thres=%.2f)", *k, *thres), rows)
		return nil
	})
	run("lambda", func() error {
		rows, err := harness.SelectTopkSensitivity(scale, *k)
		if err != nil {
			return err
		}
		harness.WriteLambdaRows(out, rows)
		return nil
	})
	run("table8", func() error {
		rows, err := harness.Table8(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteTable8(out, rows)
		return nil
	})
	run("fig5", func() error {
		rows, err := harness.Fig5(scale, *thres)
		if err != nil {
			return err
		}
		harness.WriteSweepRows(out, "Fig. 5: impact of K", "K", rows)
		return nil
	})
	run("fig6", func() error {
		rows, err := harness.Fig6(scale, *k)
		if err != nil {
			return err
		}
		harness.WriteSweepRows(out, "Fig. 6: impact of thres", "thres", rows)
		return nil
	})
	run("fig7", func() error {
		rows, err := harness.Fig7(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteSweepRows(out, "Fig. 7: Top-K windows (10% window sampling)", "window", rows)
		return nil
	})
	run("fig8", func() error {
		rows, err := harness.Fig8(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteSweepRows(out, "Fig. 8: Visual Road object density", "cars", rows)
		return nil
	})
	run("fig9", func() error {
		rows, err := harness.Fig9(scale)
		if err != nil {
			return err
		}
		harness.WriteSystemRows(out, "Fig. 9: depth-estimator UDF on dashcam videos", rows)
		return nil
	})
	run("ingest", func() error {
		rows, err := harness.IngestionAmortization(scale, *thres)
		if err != nil {
			return err
		}
		harness.WriteIngestRows(out, rows)
		return nil
	})
	run("ablations", func() error {
		for _, ab := range []struct {
			title string
			fn    func(harness.Scale, int, float64) ([]harness.AblationRow, error)
		}{
			{"A1: ψ early stopping", harness.AblationEarlyStop},
			{"A2: ψ re-sort schedule", harness.AblationResort},
			{"A3: batch size b", harness.AblationBatch},
			{"A4: difference detector", harness.AblationDiff},
			{"A5: uncertain Top-K semantics", harness.AblationSemantics},
			{"A6: ψ-order prefetching", harness.AblationPrefetch},
			{"A7: confidence bound (exact vs union)", harness.AblationBound},
		} {
			rows, err := ab.fn(scale, *k, *thres)
			if err != nil {
				return err
			}
			harness.WriteAblationRows(out, ab.title, rows)
		}
		return nil
	})
	run("scaleout", func() error {
		rows, err := harness.ScaleoutScalability(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteScaleRows(out, rows)
		return nil
	})
	run("session", func() error {
		rows, err := harness.SessionAmortization(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteSessionRows(out, rows)
		return nil
	})
	run("sliding", func() error {
		rows, err := harness.SlidingWindows(scale, *k, *thres)
		if err != nil {
			return err
		}
		harness.WriteSlidingRows(out, rows)
		return nil
	})
}
