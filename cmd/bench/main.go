// Command bench captures the repository's benchmark suite into a
// machine-readable JSON file (BENCH_engine.json by default), so
// successive PRs leave a performance trajectory that can be diffed
// instead of re-measured from scratch.
//
// It shells out to `go test -run ^$ -bench <pattern> -benchmem` for each
// selected package, parses the standard benchmark output lines —
// including custom metrics such as precision and speedup — and writes one
// JSON document with the environment stamp (Go version, GOMAXPROCS) the
// numbers were taken under.
//
// Usage:
//
//	go run ./cmd/bench                        # engine-relevant defaults
//	go run ./cmd/bench -bench . -pkg ./...    # everything (slow)
//	go run ./cmd/bench -out BENCH_engine.json -benchtime 1x
//	make bench                                # same as the first form
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name, including any -cpu suffix.
	Name string `json:"name"`
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Iterations is b.N of the final run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op plus any custom
	// b.ReportMetric units (precision, speedup, …).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document written to the output file.
type Report struct {
	// Generated is the capture timestamp (RFC 3339).
	Generated string `json:"generated"`
	// GoVersion and GOMAXPROCS stamp the environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// BenchPattern and Benchtime echo the capture parameters.
	BenchPattern string `json:"bench_pattern"`
	Benchtime    string `json:"benchtime"`
	// Benchmarks are the parsed results.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_engine.json", "output JSON path")
		pattern   = flag.String("bench", "Fig4Overall|CMDNGridTrain|ProxyPredict|TrainGridPoint|SelectBatch|EngineRun|SessionConcurrent", "benchmark regexp")
		pkgs      = flag.String("pkg", ".,./internal/cmdn,./internal/core", "comma-separated packages")
		benchtime = flag.String("benchtime", "", "passed to -benchtime when non-empty (e.g. 1x, 2s)")
	)
	flag.Parse()

	report := Report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BenchPattern: *pattern,
		Benchtime:    *benchtime,
	}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		report.Benchmarks = append(report.Benchmarks, parseBenchOutput(pkg, buf.String())...)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(report.Benchmarks), *out)
}

// parseBenchOutput extracts Benchmark entries from `go test -bench`
// stdout. A result line looks like:
//
//	BenchmarkFoo-8   	 124	 9612345 ns/op	 0.96 precision	 312 B/op	 4 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchOutput(pkg, out string) []Benchmark {
	var results []Benchmark
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Package:    pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		results = append(results, b)
	}
	return results
}
