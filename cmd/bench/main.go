// Command bench captures the repository's benchmark suite into a
// machine-readable JSON file (BENCH_engine.json by default), so
// successive PRs leave a performance trajectory that can be diffed
// instead of re-measured from scratch.
//
// It shells out to `go test -run ^$ -bench <pattern> -benchmem` for each
// selected package, parses the standard benchmark output lines —
// including custom metrics such as precision and speedup — and writes one
// JSON document with the environment stamp (Go version, GOMAXPROCS) the
// numbers were taken under. Each benchmark additionally records the
// GOMAXPROCS it ran at (parsed from the -N name suffix), and -cpu runs
// the suite at several worker counts so parallel-path wins are visible
// in the captured file, not hidden behind a serial-only run.
//
// Usage:
//
//	go run ./cmd/bench                        # engine-relevant defaults
//	go run ./cmd/bench -bench . -pkg ./...    # everything (slow)
//	go run ./cmd/bench -out BENCH_engine.json -benchtime 1x
//	go run ./cmd/bench -compare BENCH_engine.json   # fresh run vs committed
//	make bench                                # first form
//	make bench-diff                           # compare form
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name, including any -cpu suffix.
	Name string `json:"name"`
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// GOMAXPROCS is the worker count this run used, parsed from the
	// benchmark name's -N suffix (absent suffix means 1).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Iterations is b.N of the final run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op plus any custom
	// b.ReportMetric units (precision, speedup, …).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document written to the output file.
type Report struct {
	// Generated is the capture timestamp (RFC 3339).
	Generated string `json:"generated"`
	// GoVersion and GOMAXPROCS stamp the environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// BenchPattern, Benchtime and CPU echo the capture parameters.
	BenchPattern string `json:"bench_pattern"`
	Benchtime    string `json:"benchtime"`
	CPU          string `json:"cpu,omitempty"`
	// Benchmarks are the parsed results.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_engine.json", "output JSON path (empty to skip writing)")
		pattern   = flag.String("bench", "Fig4Overall|CMDNGridTrain|ProxyPredict|TrainGridPoint|SelectBatch|EngineRun|SessionConcurrent|SessionSharedCache|SessionCoalesced|OracleMux|StreamingIngest|FollowDeltas|EQLScript", "benchmark regexp")
		pkgs      = flag.String("pkg", ".,./internal/cmdn,./internal/core", "comma-separated packages")
		benchtime = flag.String("benchtime", "", "passed to -benchtime when non-empty (e.g. 1x, 2s)")
		cpu       = flag.String("cpu", "1,8", "passed to -cpu: comma-separated GOMAXPROCS values per benchmark (empty for the go test default)")
		compare   = flag.String("compare", "", "baseline JSON to diff the fresh run against (e.g. the committed BENCH_engine.json)")
	)
	flag.Parse()

	var baseline *Report
	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fatalf("reading baseline: %v", err)
		}
		baseline = new(Report)
		if err := json.Unmarshal(data, baseline); err != nil {
			fatalf("parsing baseline %s: %v", *compare, err)
		}
		// In compare mode the default output would clobber the baseline
		// being compared; write only where -out was given explicitly.
		explicitOut := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				explicitOut = true
			}
		})
		if !explicitOut {
			*out = ""
		}
	}

	report := Report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BenchPattern: *pattern,
		Benchtime:    *benchtime,
		CPU:          *cpu,
	}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		if *cpu != "" {
			args = append(args, "-cpu", *cpu)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fatalf("%s: %v", pkg, err)
		}
		report.Benchmarks = append(report.Benchmarks, parseBenchOutput(pkg, buf.String())...)
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(report.Benchmarks), *out)
	}
	if baseline != nil {
		if err := diff(os.Stdout, baseline, &report); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}

// benchKey identifies one benchmark run across reports: package plus
// full name (the -N cpu suffix included, so each worker count is its
// own series).
func benchKey(b Benchmark) string { return b.Package + " " + b.Name }

// headlineMetrics are the units diffed per benchmark, in print order;
// custom metrics (precision, speedup, …) ride along after them.
var headlineMetrics = []string{"ns/op", "B/op", "allocs/op"}

// diff prints per-benchmark deltas of a fresh run against a baseline
// report. Every baseline benchmark must appear in the fresh run — a
// missing one fails loudly, because a silently dropped benchmark is
// how serving-path regressions slip through. Fresh-only benchmarks are
// listed as new, without failing.
func diff(w *os.File, baseline, fresh *Report) error {
	freshBy := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[benchKey(b)] = b
	}
	baseBy := make(map[string]Benchmark, len(baseline.Benchmarks))
	var missing []string
	for _, b := range baseline.Benchmarks {
		baseBy[benchKey(b)] = b
		if _, ok := freshBy[benchKey(b)]; !ok {
			missing = append(missing, benchKey(b))
		}
	}

	fmt.Fprintf(w, "benchmark diff: baseline %s (go %s, GOMAXPROCS %d) vs fresh run (go %s, GOMAXPROCS %d)\n\n",
		baseline.Generated, baseline.GoVersion, baseline.GOMAXPROCS, fresh.GoVersion, fresh.GOMAXPROCS)
	keys := make([]string, 0, len(freshBy))
	for k := range freshBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tw := bufio.NewWriter(w)
	for _, k := range keys {
		nb := freshBy[k]
		ob, inBase := baseBy[k]
		if !inBase {
			fmt.Fprintf(tw, "%-60s new (no baseline)\n", k)
			continue
		}
		fmt.Fprintf(tw, "%s\n", k)
		// Diff the union of both runs' units, so a metric that vanished
		// from the fresh run is reported rather than silently skipped.
		units := append([]string(nil), headlineMetrics...)
		seen := map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}
		extra := make([]string, 0, len(nb.Metrics)+len(ob.Metrics))
		for u := range nb.Metrics {
			if !seen[u] {
				seen[u] = true
				extra = append(extra, u)
			}
		}
		for u := range ob.Metrics {
			if !seen[u] {
				seen[u] = true
				extra = append(extra, u)
			}
		}
		sort.Strings(extra)
		units = append(units, extra...)
		for _, u := range units {
			nv, nok := nb.Metrics[u]
			ov, ook := ob.Metrics[u]
			switch {
			case nok && ook:
				delta := "~"
				if ov != 0 {
					delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
				}
				fmt.Fprintf(tw, "    %-12s %18.6g  ->  %18.6g   %s\n", u, ov, nv, delta)
			case nok:
				fmt.Fprintf(tw, "    %-12s %18s  ->  %18.6g   (new metric)\n", u, "-", nv)
			case ook:
				fmt.Fprintf(tw, "    %-12s %18.6g  ->  %18s   (metric missing from fresh run)\n", u, ov, "-")
				missing = append(missing, k+" ["+u+"]")
			}
		}
	}
	tw.Flush()
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("%d baseline benchmark(s) or metric(s) missing from the fresh run:\n  %s\n(was a benchmark or ReportMetric renamed or dropped, or the -bench/-pkg/-cpu selection narrowed?)",
			len(missing), strings.Join(missing, "\n  "))
	}
	return nil
}

// parseBenchOutput extracts Benchmark entries from `go test -bench`
// stdout. A result line looks like:
//
//	BenchmarkFoo-8   	 124	 9612345 ns/op	 0.96 precision	 312 B/op	 4 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchOutput(pkg, out string) []Benchmark {
	var results []Benchmark
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		b := Benchmark{
			Name:       name,
			Package:    pkg,
			GOMAXPROCS: gomaxprocsOf(name),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		results = append(results, b)
	}
	return results
}

// gomaxprocsOf parses the -N worker-count suffix go test appends to
// benchmark names when GOMAXPROCS != 1; no suffix means 1.
func gomaxprocsOf(name string) int {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return 1
	}
	return n
}
