// Quickstart: the smallest complete Everest query.
//
// It builds a synthetic traffic video, asks for the Top-10 frames with the
// most cars at a 0.9 probabilistic guarantee, and prints the result — the
// first thing a new user should run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	// A 10-minute 30-fps traffic camera with a rush-hour burst.
	src, err := video.NewSynthetic(video.Config{
		Name:           "quickstart-junction",
		Kind:           video.KindTraffic,
		Class:          video.ClassCar,
		Frames:         18000,
		FPS:            30,
		Seed:           42,
		MeanPopulation: 3,
		BurstRate:      6, // bursts per hour
		DailyCycle:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The scoring UDF: the number of cars the oracle detector finds.
	udf := vision.CountUDF{Class: video.ClassCar}

	// Top-10 with a 90% guarantee of being the exact answer.
	res, err := everest.Run(src, udf, everest.Config{K: 10, Threshold: 0.9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Top-10 busiest moments (confidence %.3f):\n", res.Confidence)
	for i, id := range res.IDs {
		fmt.Printf("  #%-2d  t=%6.1fs  %2.0f cars\n",
			i+1, float64(id)/float64(src.FPS()), res.Scores[i])
	}
	fmt.Printf("\noracle invocations: %d of %d frames (%.2f%%)\n",
		res.EngineStats.Cleaned+res.Phase1.TrainSamples+res.Phase1.HoldoutSamples,
		src.NumFrames(),
		100*float64(res.EngineStats.Cleaned+res.Phase1.TrainSamples+res.Phase1.HoldoutSamples)/float64(src.NumFrames()))
	fmt.Printf("simulated query time: %.0f ms (scan-and-test would be %.0f ms)\n",
		res.Clock.TotalMS(), float64(src.NumFrames())*206)
}
