// Thumbnail generation (paper §1, use case 2): a social platform picks
// video thumbnails by visual sentiment — the Top-10 happiest moments, as
// scored by a deep visual sentimentalizer, maximize click-through.
//
// This example also demonstrates window queries: besides single frames, it
// asks for the happiest 2-second clips (Top-K tumbling windows, §3.4),
// which make better animated previews than isolated frames.
//
//	go run ./examples/thumbnails
package main

import (
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	spec, err := video.DatasetByName("Daxi-old-street")
	if err != nil {
		log.Fatal(err)
	}
	src, err := spec.Build(24000)
	if err != nil {
		log.Fatal(err)
	}

	udf := vision.SentimentUDF{}

	// Top-10 happiest frames → static thumbnails.
	frames, err := everest.Run(src, udf, everest.Config{K: 10, Threshold: 0.9, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static thumbnail candidates (confidence %.3f):\n", frames.Confidence)
	for i, id := range frames.IDs {
		fmt.Printf("  #%-2d frame %-6d t=%6.1fs happiness %3.0f/100\n",
			i+1, id, float64(id)/float64(src.FPS()), frames.Scores[i])
	}

	// Top-3 happiest 2-second clips → animated previews.
	const clip = 60 // 2 s at 30 fps
	clips, err := everest.Run(src, udf, everest.Config{
		K: 3, Threshold: 0.9, Window: clip, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanimated preview candidates (confidence %.3f):\n", clips.Confidence)
	for i, w := range clips.IDs {
		start := float64(w*clip) / float64(src.FPS())
		fmt.Printf("  #%-2d clip [%6.1fs – %6.1fs] mean happiness %5.1f/100\n",
			i+1, start, start+2, clips.Scores[i])
	}
}
