// Property valuation (paper §1, use case 1): the rent of a shop tracks its
// peak foot traffic. Instead of manually counting passers-by, point a
// camera at the street and ask Everest for the Top-5 moments with the most
// pedestrians — each returned frame is oracle-confirmed, so the valuation
// analyst can cite exact counts.
//
//	go run ./examples/propertyvaluation
package main

import (
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	// The Daxi-old-street stand-in: a pedestrian shopping street.
	spec, err := video.DatasetByName("Daxi-old-street")
	if err != nil {
		log.Fatal(err)
	}
	src, err := spec.Build(24000) // ~13 minutes at 30 fps
	if err != nil {
		log.Fatal(err)
	}

	udf := vision.CountUDF{Class: video.ClassPerson}
	res, err := everest.Run(src, udf, everest.Config{K: 5, Threshold: 0.9, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("peak foot traffic in front of the shop:")
	fmt.Printf("%-6s %-12s %-12s\n", "rank", "time", "pedestrians")
	for i, id := range res.IDs {
		sec := float64(id) / float64(src.FPS())
		fmt.Printf("#%-5d %02d:%05.2f     %2.0f\n", i+1, int(sec)/60, secFrac(sec), res.Scores[i])
	}
	fmt.Printf("\nanswer is exact with probability ≥ %.2f (measured confidence %.3f)\n",
		0.9, res.Confidence)

	// The peak count drives the valuation: e.g. a simple pedestrian-flow
	// multiplier on the base rent.
	peak := res.Scores[0]
	base := 2400.0 // monthly base rent
	fmt.Printf("suggested rent: $%.0f/month (base $%.0f × flow factor %.2f)\n",
		base*(1+peak/20), base, 1+peak/20)
}

func secFrac(sec float64) float64 {
	m := int(sec) / 60
	return sec - float64(m)*60
}
