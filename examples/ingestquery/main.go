// Ingest once, query many times — the analyst-session workflow.
//
// Phase 1 (sampling, CMDN training, difference detection, proxy
// inference) depends only on the video and the UDF, so it can run at
// ingestion time (§4.2 discusses exactly this, citing Focus). This
// example builds that ingestion Index once, persists it, and then drives
// an interactive-style session over it:
//
//	Top-50 → repeat → drill down to Top-10 → tighten thres → window view
//
// A Session additionally caches every exact frame score the oracle
// reveals, so each successive query pays only its marginal oracle cost —
// repeats and drill-downs are free.
//
//	go run ./examples/ingestquery
package main

import (
	"bytes"
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	src, err := video.NewSynthetic(video.Config{
		Name:           "ingest-junction",
		Kind:           video.KindTraffic,
		Class:          video.ClassCar,
		Frames:         24000,
		FPS:            30,
		Seed:           11,
		MeanPopulation: 3,
		BurstRate:      5,
		DailyCycle:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}

	// Ingestion: run Phase 1 once and persist the index (here to a
	// buffer; a file works the same via os.Create).
	ix, err := everest.BuildIndex(src, udf, everest.Config{K: 50, Threshold: 0.9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var stored bytes.Buffer
	if err := ix.Save(&stored); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %s: %.0f sim-ms once, %d bytes on disk\n\n",
		src.Name(), ix.IngestMS(), stored.Len())

	// Query time: restore the index and open a session over it.
	restored, err := everest.LoadIndex(&stored)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := everest.NewSession(restored, src, udf)
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name string
		cfg  everest.Config
	}{
		{"top-50 thres 0.9", everest.Config{K: 50, Threshold: 0.9, Seed: 1}},
		{"same query again", everest.Config{K: 50, Threshold: 0.9, Seed: 1}},
		{"drill down: top-10", everest.Config{K: 10, Threshold: 0.9, Seed: 1}},
		{"tighten: thres 0.99", everest.Config{K: 50, Threshold: 0.99, Seed: 1}},
		{"window view: 1-second windows", everest.Config{K: 10, Threshold: 0.9, Window: 30, Seed: 1}},
	}
	fmt.Printf("%-32s %14s %9s %12s\n", "query", "cost (sim-ms)", "cleaned", "cache size")
	for _, q := range queries {
		res, err := sess.Query(q.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %14.0f %9d %12d\n",
			q.name, res.Clock.TotalMS(), res.EngineStats.Cleaned, sess.CachedLabels())
	}
	fmt.Println("\nrepeats and drill-downs are oracle-free: their contenders were")
	fmt.Println("already confirmed, and the session cache made them certain in D0.")
}
