// Probabilistic skyline (the paper's §5 future-work direction): find the
// frames that are not dominated on BOTH criteria — car count and
// pedestrian count — with quantified membership probability, directly
// from the CMDN's uncertain relation and without any oracle scan.
//
// A city analyst reads the result as "the moments that were extreme in
// some direction": car-heavy, pedestrian-heavy, or both.
//
//	go run ./examples/skyline
package main

import (
	"fmt"
	"log"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/skyline"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	src, err := video.NewSynthetic(video.Config{
		Name: "skyline-junction", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 9000, FPS: 30, Seed: 21,
		MeanPopulation: 3, BurstRate: 6, DistractorPopulation: 2.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One Phase 1 per criterion: each trains a CMDN for its own UDF.
	opts := func(seed uint64) phase1.Options {
		return phase1.Options{
			Proxy: cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 30},
			Cost:  simclock.Default(),
			Seed:  seed,
		}
	}
	cars, err := phase1.Run(src, vision.CountUDF{Class: video.ClassCar}, opts(1), simclock.NewClock())
	if err != nil {
		log.Fatal(err)
	}
	people, err := phase1.Run(src, vision.CountUDF{Class: video.ClassPerson}, opts(2), simclock.NewClock())
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the two-dimensional uncertain relation over frames both
	// pipelines retained; thin it to every 10th frame to keep the O(n²)
	// skyline operator snappy for the demo.
	qopt := uncertain.DefaultCountingOptions()
	carRel := cars.FrameRelation(qopt)
	carDist := make(map[int]uncertain.Dist, len(carRel))
	for _, x := range carRel {
		carDist[x.ID] = x.Dist
	}
	var rel skyline.Relation
	for i, x := range people.FrameRelation(qopt) {
		if i%10 != 0 {
			continue
		}
		cd, ok := carDist[x.ID]
		if !ok {
			continue
		}
		rel = append(rel, skyline.Tuple{ID: x.ID, Dims: []uncertain.Dist{cd, x.Dist}})
	}

	res, err := skyline.Query(rel, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probabilistic skyline over %d frames (membership ≥ 0.25): %d members\n\n",
		len(rel), len(res))
	fmt.Printf("%-8s %-10s %-14s %-10s %-10s\n", "frame", "time", "Pr(skyline)", "cars", "people")
	limit := min(12, len(res))
	for _, r := range res[:limit] {
		sc := src.Scene(r.ID)
		fmt.Printf("%-8d t=%6.1fs  %12.3f   %-10d %-10d\n",
			r.ID, float64(r.ID)/float64(src.FPS()), r.Probability,
			sc.CountClass(video.ClassCar), sc.CountClass(video.ClassPerson))
	}
	if len(res) > limit {
		fmt.Printf("... and %d more\n", len(res)-limit)
	}
}
