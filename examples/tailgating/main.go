// Fleet management (paper §1, use case 3): a trucking company reviews
// dashcam footage for dangerous tailgating. A deep depth estimator
// measures the gap to the vehicle ahead; Everest returns the Top-50 most
// dangerous moments — and, windowed, the most dangerous 5-second episodes
// — so a safety officer reviews minutes instead of hours.
//
// The example also materializes a slice of the underlying video relation
// (the paper's Table 2) to show what a scan-and-test system would have to
// build in full.
//
//	go run ./examples/tailgating
package main

import (
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	spec, err := video.DatasetByName("Dashcam-California")
	if err != nil {
		log.Fatal(err)
	}
	src, err := spec.Build(27000) // 15 minutes of driving
	if err != nil {
		log.Fatal(err)
	}

	udf := vision.TailgateUDF{} // danger = 40 m − gap, floor 0

	res, err := everest.Run(src, udf, everest.Config{K: 50, Threshold: 0.9, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Top tailgating moments (confidence %.3f, showing 10 of %d):\n",
		res.Confidence, len(res.IDs))
	for i := 0; i < 10; i++ {
		id := res.IDs[i]
		gap := 40 - res.Scores[i]
		fmt.Printf("  #%-3d t=%7.1fs  gap %4.1f m\n",
			i+1, float64(id)/float64(src.FPS()), gap)
	}

	// The most dangerous sustained episodes: Top-5 five-second windows.
	const win = 150 // 5 s at 30 fps
	eps, err := everest.Run(src, udf, everest.Config{
		K: 5, Threshold: 0.9, Window: win, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost dangerous 5-second episodes (confidence %.3f):\n", eps.Confidence)
	for i, w := range eps.IDs {
		start := float64(w*win) / float64(src.FPS())
		fmt.Printf("  #%-2d [%7.1fs – %7.1fs] mean danger %.1f\n",
			i+1, start, start+5, eps.Scores[i])
	}

	// For contrast: the ground-truth video relation a scan-and-test system
	// would materialize (Table 2) — here only 3 frames' worth.
	rows := vision.MaterializeRelation(src, vision.OracleDetector{}, res.IDs[0], res.IDs[0]+3)
	fmt.Printf("\nvideo relation around the worst moment (Table 2 shape):\n%s",
		vision.FormatRelation(rows, 8))
}
