// Scale-out: answer one Top-K query with a fleet of parallel workers.
//
// The paper names a RAM3S-style scale-out framework as future work
// (§3.5); everest.RunParallel implements it. The video is partitioned
// into P shards, each worker runs the full Phase 1 pipeline (sampling,
// labelling, training its own specialized CMDN, difference detection) on
// its own simulated accelerator, and one global Phase 2 cleans batches
// spread across the same accelerators.
//
// The example prints the latency/bill trade-off: wall-clock drops with P
// while the total paid accelerator time grows, because every shard pays
// the fixed sampling floor and trains its own proxy.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func main() {
	// An hour of 30-fps traffic footage — long enough that Phase 1
	// dominates and parallelizing it pays.
	src, err := video.NewSynthetic(video.Config{
		Name:           "scaleout-junction",
		Kind:           video.KindTraffic,
		Class:          video.ClassCar,
		Frames:         36000,
		FPS:            30,
		Seed:           7,
		MeanPopulation: 3,
		BurstRate:      4,
		DailyCycle:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := everest.Config{K: 10, Threshold: 0.9, Seed: 1}

	fmt.Println("Top-10 busiest moments, P-way scale-out:")
	fmt.Printf("%8s %14s %14s %12s %12s\n", "workers", "wall (sim-ms)", "bill (sim-ms)", "confidence", "cleaned")
	var serialWall float64
	for _, p := range []int{1, 2, 4, 8} {
		res, err := everest.RunParallel(src, udf, cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		wall := res.Clock.TotalMS()
		if p == 1 {
			serialWall = wall
		}
		fmt.Printf("%8d %14.0f %14.0f %12.3f %12d\n",
			p, wall, res.WorkerSumMS, res.Confidence, res.EngineStats.Cleaned)
		if p == 8 {
			fmt.Printf("\n8 workers answer %.1f× faster than 1 worker;\n", serialWall/wall)
			fmt.Println("the guarantee and the certain-result condition are unchanged.")
			for i, id := range res.IDs[:3] {
				fmt.Printf("  #%d  t=%6.1fs  %2.0f cars\n",
					i+1, float64(id)/float64(src.FPS()), res.Scores[i])
			}
		}
	}
}
