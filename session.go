package everest

import (
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Session runs many queries against one Index while sharing oracle work
// between them. Every frame score the oracle reveals — cleaning a frame,
// or sampling frames to confirm a window — is cached, and later queries
// see those frames as certain tuples in D0 at zero cost. This is the
// multi-query extension of the paper's observation that Phase 1 can be
// amortized across queries (§4.2): a Session amortizes Phase 2's oracle
// bill too. Different K, thres, window size and stride all share one
// cache, because an exact frame score is query-independent.
//
// A Session is tied to the (video, UDF) pair of its Index and is not safe
// for concurrent use.
type Session struct {
	ix     *Index
	src    video.Source
	udf    vision.UDF
	labels map[int]float64

	queries int
}

// NewSession validates that (src, udf) matches the index and returns an
// empty-cache session.
func NewSession(ix *Index, src video.Source, udf vision.UDF) (*Session, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return nil, err
	}
	return &Session{
		ix:     ix,
		src:    src,
		udf:    udf,
		labels: make(map[int]float64),
	}, nil
}

// Query runs one Top-K (or Top-K-window) query, reusing every oracle
// label revealed by earlier queries in this session. Only the marginal
// oracle cost — frames no previous query confirmed — is charged to the
// result's clock.
func (s *Session) Query(cfg Config) (*Result, error) {
	res, err := s.ix.query(s.src, s.udf, cfg, s.labels)
	if err != nil {
		return nil, err
	}
	s.queries++
	return res, nil
}

// CachedLabels returns the number of distinct frames whose exact score
// the session has accumulated.
func (s *Session) CachedLabels() int { return len(s.labels) }

// Queries returns how many queries completed in this session.
func (s *Session) Queries() int { return s.queries }
