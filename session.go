package everest

import (
	"fmt"
	"sync"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/workpool"
)

// Session runs many queries against one Index while sharing oracle work
// between them. Every frame score the oracle reveals — cleaning a frame,
// or sampling frames to confirm a window — is cached, and later queries
// see those frames as certain tuples in D0 at zero cost. This is the
// multi-query extension of the paper's observation that Phase 1 can be
// amortized across queries (§4.2): a Session amortizes Phase 2's oracle
// bill too. Different K, thres, window size and stride all share one
// cache, because an exact frame score is query-independent.
//
// A Session is tied to the (video, UDF) pair of its Index and is safe for
// concurrent use: any number of goroutines may call Query at once over
// the shared Index and label cache. Each query runs on a private snapshot
// of the cache taken when it starts and merges its newly confirmed labels
// back when it finishes, so a query's result is a deterministic function
// of (snapshot, Config) — the engine never observes another query's
// labels mid-flight. For bit-reproducible concurrent execution use
// QueryBatch (or RunConcurrent), which gives every query of the batch the
// same snapshot and merges in query order; see DESIGN.md's shared-label-
// cache contract.
type Session struct {
	ix  *Index
	src video.Source
	udf vision.UDF

	mu      sync.Mutex
	labels  map[int]float64
	queries int
}

// NewSession validates that (src, udf) matches the index and returns an
// empty-cache session.
func NewSession(ix *Index, src video.Source, udf vision.UDF) (*Session, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return nil, err
	}
	return &Session{
		ix:     ix,
		src:    src,
		udf:    udf,
		labels: make(map[int]float64),
	}, nil
}

// snapshotLabels copies the shared cache under the lock. Queries run on
// private clones of the snapshot (the engine reads cached labels from the
// clone and records fresh confirmations into it), and the pristine
// snapshot identifies the fresh entries at merge time.
func (s *Session) snapshotLabels() map[int]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cloneLabels(s.labels)
}

// freshLabels extracts the labels a finished query added on top of its
// snapshot. Queries only add entries, so overlay ⊇ snap and equal sizes
// mean nothing fresh. Runs outside the session lock.
func freshLabels(snap, overlay map[int]float64) map[int]float64 {
	if len(overlay) == len(snap) {
		return nil
	}
	fresh := make(map[int]float64, len(overlay)-len(snap))
	for f, v := range overlay {
		if _, ok := snap[f]; !ok {
			fresh[f] = v
		}
	}
	return fresh
}

// mergeLabels folds a finished query's fresh confirmations into the
// shared cache and counts the query; the critical section is sized by the
// new labels, not the whole cache. Exact scores are query-independent, so
// merge order can only affect which equal value wins.
func (s *Session) mergeLabels(fresh map[int]float64, queries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for f, v := range fresh {
		s.labels[f] = v
	}
	s.queries += queries
}

// cloneLabels copies a label map (a query's private overlay).
func cloneLabels(m map[int]float64) map[int]float64 {
	c := make(map[int]float64, len(m))
	for f, v := range m {
		c[f] = v
	}
	return c
}

// Query runs one Top-K (or Top-K-window) query, reusing every oracle
// label revealed by earlier queries in this session. Only the marginal
// oracle cost — frames no previous query confirmed — is charged to the
// result's clock. Query is safe for concurrent use; each call's result is
// the deterministic function of the cache snapshot it starts from.
func (s *Session) Query(cfg Config) (*Result, error) {
	snap := s.snapshotLabels()
	overlay := cloneLabels(snap)
	res, err := s.ix.query(s.src, s.udf, cfg, overlay)
	if err != nil {
		return nil, err
	}
	s.mergeLabels(freshLabels(snap, overlay), 1)
	return res, nil
}

// QueryBatch runs the given queries concurrently over one shared cache
// snapshot and returns their results in input order. Because every query
// of the batch sees the same snapshot and the overlays merge in query
// order after all complete, the results — and the cache state left behind
// — are bit-identical for every interleaving and worker count, unlike
// free-running concurrent Query calls (whose snapshots depend on arrival
// order).
//
// Each query's worker budget (Config.Procs) is divided by the batch
// width, mirroring the scale-out shard convention, so a wide batch does
// not oversubscribe the cores; Procs never affects results. On failure
// the first failing query's error (lowest index) is returned; the
// successful queries' confirmed labels are still merged, so their oracle
// work is not lost.
func (s *Session) QueryBatch(cfgs []Config) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	snap := s.snapshotLabels()
	overlays := make([]map[int]float64, len(cfgs))
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		overlays[i] = cloneLabels(snap)
		cfg := cfgs[i]
		cfg.Procs = max(1, workpool.Procs(cfg.Procs)/len(cfgs))
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			results[i], errs[i] = s.ix.query(s.src, s.udf, cfg, overlays[i])
		}(i, cfg)
	}
	wg.Wait()
	var firstErr error
	for i := range cfgs {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("everest: batch query %d: %w", i, errs[i])
			}
			continue
		}
		s.mergeLabels(freshLabels(snap, overlays[i]), 1)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// RunConcurrent runs n copies of the same query concurrently via
// QueryBatch — the N-concurrent-callers serving scenario. All n results
// are bit-identical to each other and to a single Query from the same
// cache state.
func (s *Session) RunConcurrent(cfg Config, n int) ([]*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("everest: concurrent query count must be positive, got %d", n)
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	return s.QueryBatch(cfgs)
}

// CachedLabels returns the number of distinct frames whose exact score
// the session has accumulated.
func (s *Session) CachedLabels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.labels)
}

// Queries returns how many queries completed in this session.
func (s *Session) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}
