package everest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/workpool"
)

// Session runs many queries against one Index while sharing oracle work
// between them. Every frame score the oracle reveals — cleaning a frame,
// or sampling frames to confirm a window — is cached, and later queries
// see those frames as certain tuples in D0 at zero cost. This is the
// multi-query extension of the paper's observation that Phase 1 can be
// amortized across queries (§4.2): a Session amortizes Phase 2's oracle
// bill too. Different K, thres, window size and stride all share one
// cache, because an exact frame score is query-independent.
//
// A Session is tied to the (video, UDF) pair of its Index and is safe for
// concurrent use: any number of goroutines may call Query at once over
// the shared Index and label cache. The cache is a versioned persistent
// map (internal/labelstore): each query pins an O(1) immutable snapshot
// when it starts and publishes its newly confirmed labels back when it
// finishes, so a query's result is a deterministic function of
// (snapshot, Config) — the engine never observes another query's labels
// mid-flight, and snapshot cost no longer grows with the cache. For
// bit-reproducible concurrent execution use QueryBatch (or
// RunConcurrent), which gives every query of the batch the same snapshot
// and merges in query order; see DESIGN.md's shared-label-cache
// contract.
//
// Every query compiles to an engine.Plan executed by the one engine
// pipeline (internal/engine). With Config.Coalesce, queries additionally
// route through the cache's cross-query scheduler, which batches
// compatible in-flight plans into one engine run — overlapping frames
// are labeled once and charged once (see DESIGN.md "Engine pipeline &
// scheduler").
//
// NewSession gives the session a private cache; NewSharedSession joins
// the process-wide cache for the (video, UDF) pair, so separate user
// sessions over the same pair reuse each other's oracle labels (and,
// when coalescing, one scheduler).
type Session struct {
	ix  *Index
	src video.Source
	udf vision.UDF

	cache   *labelstore.SharedCache
	queries atomic.Int64
}

// NewSession validates that (src, udf) matches the index and returns a
// session with a private, empty label cache.
func NewSession(ix *Index, src video.Source, udf vision.UDF) (*Session, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return nil, err
	}
	return &Session{
		ix:    ix,
		src:   src,
		udf:   udf,
		cache: labelstore.NewSharedCache(),
	}, nil
}

// NewSharedSession is NewSession on the process-wide label cache for
// the (video, UDF) pair: every shared session over the same pair — one
// per user in a serving deployment — publishes into and snapshots from
// one store, so a frame any user's query confirmed is free for all
// later queries, whoever issues them. Results remain deterministic per
// query: each pins an immutable cache version when it starts (see
// DESIGN.md's serving-layer contract). Shared sessions also share the
// pair's coalescing scheduler, so Coalesce batches queries across
// users, not just within one session.
func NewSharedSession(ix *Index, src video.Source, udf vision.UDF) (*Session, error) {
	if err := ix.validateFor(src, udf); err != nil {
		return nil, err
	}
	return &Session{
		ix:    ix,
		src:   src,
		udf:   udf,
		cache: labelstore.For(sharedCacheKey(ix)),
	}, nil
}

// sharedCacheKey identifies the label-reuse domain: same video content
// and same scoring function. Frame count is included because label
// frame indices are only meaningful against one fixed timeline.
func sharedCacheKey(ix *Index) string {
	return fmt.Sprintf("%s\x00%d\x00%s", ix.art.Dataset, ix.art.TotalFrames, ix.art.UDFName)
}

// scheduler returns the coalescing scheduler of the session's label
// cache. The scheduler lives on the cache itself (one per cache, the
// cache's lifetime), so every shared session on one (video, UDF) pair
// submits to one process-wide queue, while a private session gets a
// private one.
func (s *Session) scheduler() *engine.Scheduler {
	return s.cache.Attachment(func() any {
		return engine.NewCacheScheduler(s.cache)
	}).(*engine.Scheduler)
}

// applyCachePolicy forwards the Config's cache-eviction knobs to the
// label cache. Installation is strictest-wins
// (labelstore.TightenPolicy): a positive knob takes effect only where
// it is tighter than what is already installed, so on a shared cache
// the most recent session can never silently loosen — or, by leaving
// a knob zero, erase — a bound a sibling session was promised;
// conflicting knobs resolve to the pairwise minimum in any arrival
// order. All-zero knobs leave the current policy untouched. A
// negative knob is the explicit administrative reset: it clears the
// whole installed policy first (on a shared cache, for every
// session), and any positive knob in the same Config then installs
// into the cleared state — the one way to loosen a shared bound. See
// DESIGN.md's serving-layer contract.
func (s *Session) applyCachePolicy(cfg Config) {
	if cfg.CacheTTL < 0 || cfg.CacheMaxLabels < 0 {
		s.cache.SetPolicy(labelstore.Policy{})
	}
	if cfg.CacheTTL > 0 || cfg.CacheMaxLabels > 0 {
		s.cache.TightenPolicy(labelstore.Policy{TTL: max(cfg.CacheTTL, 0), MaxLabels: max(cfg.CacheMaxLabels, 0)})
	}
}

// Query runs one Top-K (or Top-K-window) query, reusing every oracle
// label revealed by earlier queries over this session's cache. Only the
// marginal oracle cost — frames no previous query confirmed — is
// charged to the result's clock. Query is safe for concurrent use; each
// call's result is the deterministic function of the cache version it
// pins at start. Config.AdmissionLimit, when set, gates the call behind
// the cache's admission control; Config.Coalesce routes it through the
// cache's cross-query scheduler instead, which batches it with other
// in-flight coalesced queries into one engine run.
func (s *Session) Query(cfg Config) (*Result, error) {
	return s.QueryCtx(context.Background(), cfg)
}

// QueryCtx is Query with a cancellable context: a cancelled ctx stops
// the query — waiting at the admission gate, queued at the coalescing
// scheduler, or mid-Phase 2 — and returns ctx.Err(). Cancellation
// never poisons siblings: a cancelled member leaves its coalesced
// group (and any mux batch) without perturbing the others' results or
// charges, and its admission slot is always released.
//
// Failure semantics (see DESIGN.md "Failure semantics"): a UDF that
// fails or panics surfaces as a typed *OracleError — a tenant's
// panicking oracle never crashes the serving process — and the
// confirmed labels a failed query already paid for are still published
// to the session's cache. Unconfirmed (degraded) estimates never are.
func (s *Session) QueryCtx(ctx context.Context, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, oraclePanicError(s.udf, r)
		}
	}()
	if err := ensureDurable(s.cache, cfg.DurableDir); err != nil {
		return nil, err
	}
	s.applyCachePolicy(cfg)
	if cfg.Coalesce {
		results, err := s.queryCoalesced(ctx, []Config{cfg})
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}
	release, err := s.cache.AdmitCtx(ctx, cfg.AdmissionLimit)
	if err != nil {
		return nil, err
	}
	defer release()
	snap, _ := s.cache.Snapshot()
	overlay := labelstore.NewOverlay(snap)
	res, qerr := s.ix.query(ctx, s.src, s.udf, cfg, overlay)
	// Publish before checking the error: a query that failed mid-cleaning
	// already paid the oracle for every label in its fresh set (only
	// successful dispatches enter the overlay), and paid-for work is
	// never lost — the same contract the coalesced path keeps.
	s.cache.Publish(overlay.Fresh())
	if qerr != nil {
		return nil, qerr
	}
	s.queries.Add(1)
	return res, nil
}

// QueryBatch runs the given queries over one shared cache snapshot and
// returns their results in input order.
//
// By default the queries run concurrently, each over its own private
// overlay of the snapshot: every query of the batch sees the same
// snapshot and the overlays merge in query order after all complete, so
// the results — and the labels published — are bit-identical for every
// interleaving and worker count, unlike free-running concurrent Query
// calls (whose snapshots depend on arrival order). Each query's worker
// budget (Config.Procs) is divided by the batch width, mirroring the
// scale-out shard convention, so a wide batch does not oversubscribe
// the cores; Procs never affects results.
//
// When any member sets Config.Coalesce, the whole batch instead runs as
// one pre-formed coalesced group on the cache's scheduler: the queries
// execute in input order over a single shared overlay, so overlapping
// frames are labeled once and charged once. Results are then
// bit-identical to calling Query serially in input order — each query
// sees its predecessors' labels — which spends strictly fewer oracle
// calls than the independent-overlay mode whenever the queries overlap.
//
// The batch counts as one unit against the cache's admission control
// (the strictest positive AdmissionLimit in the batch applies). On
// failure the first failing query's error (lowest index; in coalesced
// mode, plan-compilation errors are reported ahead of execution-stage
// ones) is returned alongside the results: successful members keep
// their Result (failed slots are nil), and their confirmed labels are
// still published, so the oracle work a partly-failed batch paid for
// is never lost — the same per-member contract in both the
// independent and the coalesced mode.
func (s *Session) QueryBatch(cfgs []Config) ([]*Result, error) {
	return s.QueryBatchCtx(context.Background(), cfgs)
}

// QueryBatchCtx is QueryBatch with a cancellable context governing the
// whole batch: cancellation stops every member with ctx.Err() (slots
// nil), releases the batch's admission slot, and still publishes the
// confirmed labels completed members paid for. A member's UDF panic is
// recovered per member — it fails only its own slot, as a typed
// *OracleError, exactly like an error return.
func (s *Session) QueryBatchCtx(ctx context.Context, cfgs []Config) (_ []*Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = oraclePanicError(s.udf, r)
		}
	}()
	if len(cfgs) == 0 {
		return nil, nil
	}
	coalesce := false
	for _, cfg := range cfgs {
		if err := ensureDurable(s.cache, cfg.DurableDir); err != nil {
			return nil, err
		}
		s.applyCachePolicy(cfg)
		coalesce = coalesce || cfg.Coalesce
	}
	if coalesce {
		return s.queryCoalesced(ctx, cfgs)
	}
	release, err := s.cache.AdmitCtx(ctx, batchAdmissionLimit(cfgs))
	if err != nil {
		return nil, err
	}
	defer release()
	snap, _ := s.cache.Snapshot()
	overlays := make([]*labelstore.Overlay, len(cfgs))
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		overlays[i] = labelstore.NewOverlay(snap)
		cfg := cfgs[i]
		cfg.Procs = max(1, workpool.Procs(cfg.Procs)/len(cfgs))
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[i], errs[i] = nil, oraclePanicError(s.udf, r)
				}
			}()
			results[i], errs[i] = s.ix.query(ctx, s.src, s.udf, cfg, overlays[i])
		}(i, cfg)
	}
	wg.Wait()
	var firstErr error
	for i := range cfgs {
		// A failed member's confirmed labels are published too: only
		// successful oracle dispatches ever enter an overlay, so this is
		// paid-for exact work, never speculation.
		s.cache.Publish(overlays[i].Fresh())
		if errs[i] != nil {
			results[i] = nil
			if firstErr == nil {
				firstErr = fmt.Errorf("everest: batch query %d: %w", i, errs[i])
			}
			continue
		}
		s.queries.Add(1)
	}
	return results, firstErr
}

// queryCoalesced submits the queries to the cache's scheduler as one
// atomic group: plans execute in input order over one shared overlay.
// It is the single coalesced entry sequence — a lone Coalesce Query is
// a group of one. Like the independent batch path, a failing member
// costs only itself, at either stage: a member whose Config fails plan
// compilation is dropped from the group (its slot stays nil) and the
// rest still run, and a member that fails mid-engine loses only its
// own outcome. Successful members' Results come back alongside the
// first error — compile-stage errors reported first — and their labels
// were already published by the scheduler, so paid-for oracle work
// survives a partly-failed group.
func (s *Session) queryCoalesced(ctx context.Context, cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	var firstErr error
	plans := make([]engine.Plan, 0, len(cfgs))
	binds := make([]engine.Binding, 0, len(cfgs))
	slot := make([]int, 0, len(cfgs))
	for i, cfg := range cfgs {
		p, b, err := s.ix.planFor(s.src, s.udf, cfg)
		if err != nil {
			if len(cfgs) > 1 {
				err = fmt.Errorf("everest: batch query %d: %w", i, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		b.Ctx = ctx
		plans = append(plans, p)
		binds = append(binds, b)
		slot = append(slot, i)
	}
	outs, err := s.scheduler().SubmitGroup(plans, binds)
	if firstErr == nil {
		firstErr = err
	}
	for j, out := range outs {
		if out == nil {
			continue
		}
		results[slot[j]] = resultOf(out, plans[j], s.ix.info)
		s.queries.Add(1)
	}
	return results, firstErr
}

// batchAdmissionLimit resolves a batch's admission cap: the strictest
// positive limit any member requests. Zero and negative limits mean
// "uncapped" for that member and are ignored — a batch whose members
// all leave the knob unset (or explicitly disable it) is admitted
// without queueing, and one capped member is enough to gate the whole
// batch (it runs as a single oracle-heavy unit, so the strictest
// member's budget must hold for all of it). An empty batch is uncapped.
func batchAdmissionLimit(cfgs []Config) int {
	limit := 0
	for _, cfg := range cfgs {
		if cfg.AdmissionLimit > 0 && (limit == 0 || cfg.AdmissionLimit < limit) {
			limit = cfg.AdmissionLimit
		}
	}
	return limit
}

// RunConcurrent runs n copies of the same query concurrently via
// QueryBatch — the N-concurrent-callers serving scenario. All n results
// are bit-identical to each other and to a single Query from the same
// cache state. (With cfg.Coalesce the copies instead run as one
// coalesced group: the first pays the oracle, the repeats ride its
// labels — results still bit-identical to serial repeats.)
func (s *Session) RunConcurrent(cfg Config, n int) ([]*Result, error) {
	return s.RunConcurrentCtx(context.Background(), cfg, n)
}

// RunConcurrentCtx is RunConcurrent with a cancellable context
// governing all n copies (see QueryBatchCtx).
func (s *Session) RunConcurrentCtx(ctx context.Context, cfg Config, n int) ([]*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("everest: concurrent query count must be positive, got %d", n)
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	return s.QueryBatchCtx(ctx, cfgs)
}

// oraclePanicError is the public API's last-resort recovery: any panic
// that unwinds out of a query path — a tenant UDF or video source that
// panicked outside the guarded dispatch boundary — becomes a typed
// *OracleError instead of crashing the process. An *OracleError panic
// value (already typed by the dispatch boundary) passes through as is.
func oraclePanicError(udf vision.UDF, r any) error {
	if oe, ok := r.(*vision.OracleError); ok {
		return oe
	}
	return &vision.OracleError{UDF: udf.Name(), Panic: r}
}

// CachedLabels returns the number of distinct frames whose exact score
// the session's cache has accumulated. For shared sessions this counts
// the whole process-wide cache, including other sessions' labels.
func (s *Session) CachedLabels() int {
	return s.cache.Len()
}

// CacheVersion returns the cache's current publish version: it advances
// by one for every query (from any session on a shared cache) that
// confirmed at least one new frame, and by one for every eviction pass.
func (s *Session) CacheVersion() uint64 {
	return s.cache.Version()
}

// Queries returns how many queries completed in this session.
func (s *Session) Queries() int {
	return int(s.queries.Load())
}

// ObservedInFlight reports how many coalesced submissions are queued or
// executing right now on the session's scheduler (for shared sessions,
// across every session on the pair's process-wide cache). It is the
// observed-arrivals signal the EQL script planner feeds its joint
// concurrency budget instead of a caller-supplied hint.
func (s *Session) ObservedInFlight() int {
	return s.scheduler().InFlight()
}
