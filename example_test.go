package everest_test

import (
	"fmt"
	"log"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// ExampleRun answers a guaranteed Top-5 object-counting query on a small
// synthetic traffic video.
func ExampleRun() {
	src, err := video.NewSynthetic(video.Config{
		Name: "example", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 6000, FPS: 30, Seed: 8, MeanPopulation: 3, BurstRate: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := everest.Run(src, vision.CountUDF{Class: video.ClassCar}, everest.Config{
		K: 5, Threshold: 0.9, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("results:", len(res.IDs))
	fmt.Println("guaranteed:", res.Confidence >= 0.9)
	// Output:
	// results: 5
	// guaranteed: true
}

// ExampleBuildIndex ingests a video once and serves two differently-shaped
// queries from the index without repeating Phase 1.
func ExampleBuildIndex() {
	src, err := video.NewSynthetic(video.Config{
		Name: "example-ix", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 6000, FPS: 30, Seed: 9, MeanPopulation: 3, BurstRate: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := everest.Config{K: 5, Threshold: 0.9, Seed: 1}
	ix, err := everest.BuildIndex(src, udf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	top5, err := ix.Query(src, udf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.K = 10
	top10, err := ix.Query(src, udf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(top5.IDs), len(top10.IDs))
	fmt.Println("phase 2 only:", top5.Clock.TotalMS() < ix.IngestMS())
	// Output:
	// 5 10
	// phase 2 only: true
}

// ExampleNewSession opens a work-sharing session over an index: the
// second, identical query reuses every oracle label of the first and
// cleans nothing.
func ExampleNewSession() {
	src, err := video.NewSynthetic(video.Config{
		Name: "example-sess", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 6000, FPS: 30, Seed: 10, MeanPopulation: 3, BurstRate: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := everest.Config{K: 5, Threshold: 0.9, Seed: 1}
	ix, err := everest.BuildIndex(src, udf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := everest.NewSession(ix, src, udf)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Query(cfg); err != nil {
		log.Fatal(err)
	}
	again, err := sess.Query(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("repeat cleaned:", again.EngineStats.Cleaned)
	// Output:
	// repeat cleaned: 0
}

// ExampleRunParallel answers the same query with 2-way scale-out; the
// result keeps its probabilistic guarantee while Phase 1 runs partitioned.
func ExampleRunParallel() {
	src, err := video.NewSynthetic(video.Config{
		Name: "example-par", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 6000, FPS: 30, Seed: 12, MeanPopulation: 3, BurstRate: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := everest.RunParallel(src, vision.CountUDF{Class: video.ClassCar},
		everest.Config{K: 5, Threshold: 0.9, Seed: 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("results:", len(res.IDs))
	fmt.Println("guaranteed:", res.Confidence >= 0.9)
	fmt.Println("shards:", len(res.Shards))
	// Output:
	// results: 5
	// guaranteed: true
	// shards: 2
}
