package everest

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/stream"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// copyArtifactForTest deep-copies an artifact so a streaming run can
// mutate it without disturbing the batch baseline. Mixture values are
// shared — appends only ever add entries.
func copyArtifactForTest(a *engine.Artifact) *engine.Artifact {
	c := *a
	c.RepOf = append([]int32(nil), a.RepOf...)
	c.Retained = append([]int32(nil), a.Retained...)
	c.Exact = make(map[int32]float64, len(a.Exact))
	for k, v := range a.Exact {
		c.Exact[k] = v
	}
	c.Mixtures = make(map[int32]uncertain.Mixture, len(a.Mixtures))
	for k, v := range a.Mixtures {
		c.Mixtures[k] = v
	}
	return &c
}

// streamTail replays the feed's tail through an ingestor in fixed-size
// chunks (chunk <= 0 delivers everything at once) and seals it.
func streamTail(t *testing.T, g *stream.Ingestor, tail, chunk int) {
	t.Helper()
	if chunk <= 0 {
		chunk = tail
	}
	for sent := 0; sent < tail; {
		c := chunk
		if sent+c > tail {
			c = tail - sent
		}
		if err := g.Append(c); err != nil {
			t.Fatal(err)
		}
		sent += c
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenStreamingMatchesBatch is the streaming determinism lock:
// ingesting a feed's tail chunk by chunk — chunk sizes 1, 7 and
// everything at once — produces an artifact, simulated ingest charges,
// and query answers bit-identical to one batch Index.Extend, at every
// golden worker count. The artifact is a pure function of the
// segment-boundary sequence; chunking must be invisible.
func TestGoldenStreamingMatchesBatch(t *testing.T) {
	const short, long = 3000, 6000
	udf := vision.CountUDF{Class: video.ClassCar}

	for _, procs := range goldenProcs {
		cfg := smallCfg(5)
		cfg.Procs = procs
		day1, full := growableSources(t, short, long, 107)

		base, err := BuildIndex(day1, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batchIx := &Index{art: copyArtifactForTest(base.art)}
		batchIx.info = phase1InfoOf(batchIx.art.Info)
		tailMS, err := batchIx.Extend(full, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batchIx.Close()
		batchRes, err := batchIx.Query(full, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batchGold := goldenOf(batchRes)

		for _, chunk := range []int{1, 7, 0} {
			art := copyArtifactForTest(base.art)
			scfg := stream.Config{
				SegmentFrames: long - short,
				Refresh:       stream.RefreshFull,
				Ingest:        cfg.withDefaults().phase1Options(cfg.Seed),
			}
			g, err := stream.NewIngestorFrom(art, full, udf, scfg)
			if err != nil {
				t.Fatal(err)
			}
			streamTail(t, g, long-short, chunk)
			g.Close()

			if !reflect.DeepEqual(batchIx.art, art) {
				t.Fatalf("procs=%d chunk=%d: streamed artifact differs from batch Extend", procs, chunk)
			}
			if g.IngestMS() != tailMS {
				t.Fatalf("procs=%d chunk=%d: streamed ingest %v ms, batch tail %v ms",
					procs, chunk, g.IngestMS(), tailMS)
			}
			streamIx := &Index{art: art, info: phase1InfoOf(art.Info)}
			res, err := streamIx.Query(full, udf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(goldenOf(res), batchGold) {
				t.Fatalf("procs=%d chunk=%d: query over streamed index diverged from batch", procs, chunk)
			}
		}
	}
}

// TestGoldenStreamingMultiSegment: a RefreshFull stream closing several
// segments is bit-identical — artifact and charges — to repeated batch
// Extends at the same boundaries.
func TestGoldenStreamingMultiSegment(t *testing.T) {
	const short, long, seg = 3000, 6000, 1500
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	day1, full := growableSources(t, short, long, 107)

	base, err := BuildIndex(day1, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	batchIx := &Index{art: copyArtifactForTest(base.art)}
	batchIx.info = phase1InfoOf(batchIx.art.Info)
	var batchMS float64
	for hi := short + seg; hi <= long; hi += seg {
		view, err := video.Prefix(full, hi)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := batchIx.Extend(view, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batchMS += ms
	}
	batchIx.Close()

	art := copyArtifactForTest(base.art)
	g, err := stream.NewIngestorFrom(art, full, udf, stream.Config{
		SegmentFrames: seg,
		Refresh:       stream.RefreshFull,
		Ingest:        cfg.withDefaults().phase1Options(cfg.Seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	streamTail(t, g, long-short, 700)
	g.Close()

	if !reflect.DeepEqual(batchIx.art, art) {
		t.Fatal("multi-segment stream differs from repeated batch Extends")
	}
	if g.IngestMS() != batchMS {
		t.Fatalf("streamed ingest %v ms, repeated Extends %v ms", g.IngestMS(), batchMS)
	}
	if g.Stats().Segments != 2 {
		t.Fatalf("segments %d, want 2", g.Stats().Segments)
	}
}

// TestGoldenFollowerConvergesToBatch: a follower's converged answer
// equals the batch index query, at every golden worker count.
func TestGoldenFollowerConvergesToBatch(t *testing.T) {
	const short, long = 3000, 6000
	udf := vision.CountUDF{Class: video.ClassCar}

	for _, procs := range goldenProcs {
		cfg := smallCfg(5)
		cfg.Procs = procs
		day1, full := growableSources(t, short, long, 107)

		base, err := BuildIndex(day1, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batchIx := &Index{art: copyArtifactForTest(base.art)}
		batchIx.info = phase1InfoOf(batchIx.art.Info)
		if _, err := batchIx.Extend(full, udf, cfg); err != nil {
			t.Fatal(err)
		}
		batchIx.Close()
		want, err := batchIx.Query(full, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}

		art := copyArtifactForTest(base.art)
		g, err := stream.NewIngestorFrom(art, full, udf, stream.Config{
			SegmentFrames: long - short,
			Refresh:       stream.RefreshFull,
			Ingest:        cfg.withDefaults().phase1Options(cfg.Seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := batchIx.planFor(full, udf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := g.Follow(stream.FollowConfig{Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		streamTail(t, g, long-short, 997)
		g.Close()

		got := f.Answer()
		if got == nil {
			t.Fatal("follower never evaluated")
		}
		if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) {
			t.Fatalf("procs=%d: converged follower answer %v/%v, batch %v/%v",
				procs, got.IDs, got.Scores, want.IDs, want.Scores)
		}
	}
}
